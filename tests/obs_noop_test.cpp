// Compile-out guard: this translation unit defines ISEX_NO_OBS before
// including any isex header, so every instrumentation macro must expand to
// `((void)0)` — no registry traffic, no span objects — while the obs classes
// themselves stay fully usable (the macro switch never changes a class or
// inline-function definition, which is what keeps this TU link-compatible
// with the instrumented library it links against).
#define ISEX_NO_OBS

#include <gtest/gtest.h>

#include <sstream>

#include "isex/obs/metrics.hpp"
#include "isex/obs/trace.hpp"
#include "isex/util/stopwatch.hpp"

namespace isex {
namespace {

static_assert(ISEX_OBS_ENABLED == 0,
              "ISEX_NO_OBS must turn the instrumentation macros off");

TEST(ObsNoopTest, MacrosCompileToNothing) {
  const auto before = obs::Registry::global().snapshot();
  ISEX_COUNT("test.noop.counter");
  ISEX_COUNT_ADD("test.noop.counter", 100);
  ISEX_GAUGE_SET("test.noop.gauge", 3.5);
  ISEX_HIST("test.noop.hist", 42);
  { ISEX_SPAN("test.noop.span"); }
  { ISEX_SPAN_CAT("test.noop.span_cat", "noop"); }
  const auto after = obs::Registry::global().snapshot();
  EXPECT_EQ(after.counters.count("test.noop.counter"), 0u);
  EXPECT_EQ(after.gauges.count("test.noop.gauge"), 0u);
  EXPECT_EQ(after.histograms.count("test.noop.hist"), 0u);
  EXPECT_EQ(after.counters.size(), before.counters.size());
}

TEST(ObsNoopTest, SpanMacroLeavesBufferEmptyEvenWhenEnabled) {
  auto& tb = obs::TraceBuffer::global();
  tb.clear();
  tb.set_enabled(true);
  { ISEX_SPAN("test.noop.enabled_span"); }
  EXPECT_EQ(tb.size(), 0u);
  tb.set_enabled(false);
  tb.clear();
}

TEST(ObsNoopTest, ExplicitApiStillWorks) {
  // Only the macros are compiled out; direct use of the classes must keep
  // working in a ISEX_NO_OBS TU (the CLI exporters rely on this).
  auto& c = obs::Registry::global().counter("test.noop.explicit");
  c.reset();
  c.add(3);
  EXPECT_EQ(c.get(), 3u);

  auto& tb = obs::TraceBuffer::global();
  tb.clear();
  tb.set_enabled(true);
  { obs::Span s("test.noop.explicit_span", "noop"); }
  EXPECT_EQ(tb.size(), 1u);
  std::ostringstream os;
  tb.write_chrome_json(os);
  EXPECT_NE(os.str().find("test.noop.explicit_span"), std::string::npos);
  tb.set_enabled(false);
  tb.clear();
}

}  // namespace
}  // namespace isex
