#include "isex/partition/kway.hpp"

#include <gtest/gtest.h>

#include <set>

namespace isex::partition {
namespace {

WeightedGraph random_graph(util::Rng& rng, int n, double edge_prob) {
  WeightedGraph g(n);
  for (int v = 0; v < n; ++v) g.set_weight(v, rng.uniform_int(1, 10));
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.chance(edge_prob)) g.add_edge(u, v, rng.uniform_int(1, 20));
  return g;
}

TEST(WeightedGraph, EdgeAccumulation) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 0, 3);
  ASSERT_EQ(g.neighbours(0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.neighbours(0)[0].second, 5);
  g.add_edge(1, 1, 7);  // self loops ignored
  EXPECT_EQ(g.neighbours(1).size(), 1u);
}

TEST(EdgeCut, CountsCrossEdgesOnce) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(2, 3, 7);
  g.add_edge(1, 2, 11);
  EXPECT_DOUBLE_EQ(edge_cut(g, {0, 0, 1, 1}), 11);
  EXPECT_DOUBLE_EQ(edge_cut(g, {0, 1, 0, 1}), 5 + 7 + 11);
  EXPECT_DOUBLE_EQ(edge_cut(g, {0, 0, 0, 0}), 0);
}

TEST(Kway, TrivialCases) {
  WeightedGraph g(5);
  util::Rng rng(1);
  EXPECT_EQ(kway_partition(g, 1, rng), (std::vector<int>{0, 0, 0, 0, 0}));
  const auto one_each = kway_partition(g, 5, rng);
  std::set<int> distinct(one_each.begin(), one_each.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(Kway, SeparatesObviousClusters) {
  // Two 5-cliques joined by one weak edge: 2-way cut must be that edge.
  WeightedGraph g(10);
  for (int c = 0; c < 2; ++c)
    for (int u = 0; u < 5; ++u)
      for (int v = u + 1; v < 5; ++v) g.add_edge(5 * c + u, 5 * c + v, 10);
  g.add_edge(4, 5, 1);
  util::Rng rng(7);
  const auto part = kway_partition(g, 2, rng);
  EXPECT_DOUBLE_EQ(edge_cut(g, part), 1);
}

class KwayProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KwayProperty, PartitionIsValidBalancedAndComplete) {
  const auto [seed, k] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  const int n = rng.uniform_int(k, 60);
  const auto g = random_graph(rng, n, 0.15);
  const auto part = kway_partition(g, k, rng);
  ASSERT_EQ(static_cast<int>(part.size()), n);
  std::set<int> used;
  for (int p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, k);
    used.insert(p);
  }
  // All parts populated when n >= k.
  EXPECT_EQ(static_cast<int>(used.size()), std::min(n, k));
}

TEST_P(KwayProperty, RefinementNeverWorseThanNaiveSplit) {
  const auto [seed, k] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 137 + 11);
  const int n = rng.uniform_int(std::max(4, k), 50);
  const auto g = random_graph(rng, n, 0.2);
  const auto part = kway_partition(g, k, rng);
  // Round-robin strawman.
  std::vector<int> naive(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) naive[static_cast<std::size_t>(v)] = v % k;
  EXPECT_LE(edge_cut(g, part), edge_cut(g, naive) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByK, KwayProperty,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(2, 3, 5)));

}  // namespace
}  // namespace isex::partition
