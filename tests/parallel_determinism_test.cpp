// Parallel solver core — byte-identity across thread counts.
//
// The contract under test: any thread count produces results byte-identical
// to --threads 1 (the exact legacy serial schedule). Covered here:
//   * ir::Dfg::is_convex (union-based) vs the reference O(V) scan;
//   * candidate enumeration, including the max_candidates-capped regime
//     where the parallel wave/replay reconstruction must reproduce the
//     serial truncation point exactly;
//   * full configuration curves over every registered benchmark kernel;
//   * RMS branch-and-bound and EDF DP selections;
//   * wall-clock-truncated parallel runs: never better than exact, every
//     emitted candidate also emitted by the unbudgeted run;
//   * the --threads CLI flag (parse, reject, byte-identical certify
//     including --paranoid).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "isex/cli/driver.hpp"
#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/hw/cell_library.hpp"
#include "isex/ise/enumerate.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/rng.hpp"
#include "isex/util/task_pool.hpp"
#include "isex/workloads/patterns.hpp"
#include "isex/workloads/tasks.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

class ThreadCap {
 public:
  explicit ThreadCap(int n) { util::set_max_threads(n); }
  ~ThreadCap() { util::set_max_threads(0); }
};

ir::Dfg random_dfg(std::uint64_t seed, int ops) {
  util::Rng rng(seed);
  ir::Dfg d;
  auto in = workloads::emit_inputs(d, 5);
  workloads::emit_expression(d, in, ops, workloads::OpMix{}, rng);
  workloads::seal_block(d);
  return d;
}

std::string candidate_key(const ise::Candidate& c) {
  std::string s;
  c.nodes.for_each([&](std::size_t i) { s += std::to_string(i) + ","; });
  char buf[64];
  std::snprintf(buf, sizeof buf, "|a=%.17g|g=%.17g", c.est.area,
                c.total_gain());
  return s + buf;
}

std::string serialize_candidates(const std::vector<ise::Candidate>& v) {
  std::string s;
  for (const auto& c : v) s += candidate_key(c) + "\n";
  return s;
}

std::string serialize_curve(const select::ConfigCurve& c) {
  std::string s;
  char buf[96];
  for (const auto& p : c.points) {
    std::snprintf(buf, sizeof buf, "%.17g,%.17g;", p.area, p.cycles);
    s += buf;
  }
  return s;
}

std::string serialize_selection(const customize::SelectionResult& r) {
  std::string s;
  for (int a : r.assignment) s += std::to_string(a) + ";";
  char buf[96];
  std::snprintf(buf, sizeof buf, "U=%.17g,A=%.17g,s=%d", r.utilization,
                r.area_used, r.schedulable ? 1 : 0);
  return s + buf;
}

TEST(ParallelDeterminism, IsConvexMatchesReferenceScan) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    const ir::Dfg d = random_dfg(seed, 80);
    util::Rng rng(seed * 977);
    int convex = 0, nonconvex = 0;
    for (int trial = 0; trial < 400; ++trial) {
      util::Bitset s = d.empty_set();
      const int k = rng.uniform_int(1, 12);
      for (int j = 0; j < k; ++j)
        s.set(static_cast<std::size_t>(
            rng.uniform_int(0, d.num_nodes() - 1)));
      const bool fast = d.is_convex(s);
      const bool slow = d.is_convex_scan(s);
      ASSERT_EQ(fast, slow) << "seed " << seed << " trial " << trial;
      (fast ? convex : nonconvex)++;
    }
    // The trial mix must actually exercise both outcomes.
    EXPECT_GT(convex, 0);
    EXPECT_GT(nonconvex, 0);
  }
}

TEST(ParallelDeterminism, EnumerationByteIdenticalAcrossThreadCounts) {
  const ir::Dfg d = random_dfg(7, 160);
  ise::EnumOptions opts;
  opts.max_candidates = 50000;
  std::string baseline;
  {
    ThreadCap cap(1);
    baseline = serialize_candidates(ise::enumerate_candidates(d, lib(), opts));
  }
  ASSERT_FALSE(baseline.empty());
  for (int t : {2, 4, 8}) {
    ThreadCap cap(t);
    EXPECT_EQ(baseline,
              serialize_candidates(ise::enumerate_candidates(d, lib(), opts)))
        << t << " threads";
  }
}

TEST(ParallelDeterminism, CappedEnumerationReplaysSerialTruncation) {
  // A cap that bites mid-seed forces the parallel wave/replay machinery to
  // reconstruct exactly where the serial run stopped.
  const ir::Dfg d = random_dfg(13, 200);
  for (int cap_candidates : {7, 50, 333}) {
    ise::EnumOptions opts;
    opts.max_candidates = cap_candidates;
    std::string baseline;
    {
      ThreadCap cap(1);
      baseline =
          serialize_candidates(ise::enumerate_candidates(d, lib(), opts));
    }
    for (int t : {2, 8}) {
      ThreadCap cap(t);
      EXPECT_EQ(baseline, serialize_candidates(
                              ise::enumerate_candidates(d, lib(), opts)))
          << cap_candidates << " cap, " << t << " threads";
    }
  }
}

TEST(ParallelDeterminism, ConfigCurvesByteIdenticalOnEveryKernel) {
  const auto& names = workloads::benchmark_names();
  ASSERT_GE(names.size(), 18u);
  const std::set<std::string> deep = {"crc32", "sha", "aes", "3des"};
  for (const auto& name : names) {
    const ir::Program prog = workloads::make_benchmark(name);
    const auto counts = prog.wcet_counts(ir::Program::sum_cost(
        [](const ir::Node& n) { return lib().sw_cycles(n); }));
    select::CurveOptions opts;
    opts.enum_opts.max_candidates = 20000;
    opts.enum_opts.max_candidate_nodes = 16;
    std::string baseline;
    {
      ThreadCap cap(1);
      baseline = serialize_curve(
          select::build_config_curve(prog, counts, lib(), opts));
    }
    ASSERT_FALSE(baseline.empty()) << name;
    // Every kernel at 4 threads; the heavy/cap-binding ones at 2 and 8 too.
    std::vector<int> threads = {4};
    if (deep.count(name) != 0) threads = {2, 4, 8};
    for (int t : threads) {
      ThreadCap cap(t);
      EXPECT_EQ(baseline, serialize_curve(select::build_config_curve(
                              prog, counts, lib(), opts)))
          << name << " at " << t << " threads";
    }
  }
}

TEST(ParallelDeterminism, RmsSelectionByteIdenticalAcrossThreadCounts) {
  auto ts = workloads::make_taskset(
      {"crc32", "sha", "g721decode", "adpcm_enc", "blowfish", "djpeg"}, 1.05);
  ts.sort_by_period();
  const double budget = 0.5 * ts.max_area();
  std::string baseline;
  {
    ThreadCap cap(1);
    baseline = serialize_selection(customize::select_rms(ts, budget));
  }
  for (int t : {2, 4, 8}) {
    ThreadCap cap(t);
    EXPECT_EQ(baseline, serialize_selection(customize::select_rms(ts, budget)))
        << t << " threads";
  }
}

TEST(ParallelDeterminism, EdfSelectionByteIdenticalAcrossThreadCounts) {
  auto ts = workloads::make_taskset(
      {"crc32", "sha", "g721decode", "blowfish"}, 1.05);
  ts.sort_by_period();
  const double budget = 0.5 * ts.max_area();
  customize::EdfOptions opts;
  // A grid fine enough that the DP rows cross the parallel width threshold.
  opts.area_grid = budget / 4096.0;
  std::string baseline;
  {
    ThreadCap cap(1);
    baseline = serialize_selection(customize::select_edf(ts, budget, opts));
  }
  for (int t : {2, 4, 8}) {
    ThreadCap cap(t);
    EXPECT_EQ(baseline,
              serialize_selection(customize::select_edf(ts, budget, opts)))
        << t << " threads";
  }
}

TEST(ParallelDeterminism, TimeTruncatedParallelRunIsNeverBetterThanExact) {
  // Wall-clock budgets may truncate anywhere, so parallel truncated runs are
  // not byte-reproducible — but they must stay sound: a subset of what the
  // exact run emits, never a different or larger answer.
  const ir::Dfg d = random_dfg(29, 260);
  ise::EnumOptions exact_opts;
  exact_opts.max_candidates = 200000;
  ThreadCap cap(8);
  const auto exact = ise::enumerate_candidates(d, lib(), exact_opts);
  std::set<std::string> exact_keys;
  for (const auto& c : exact) exact_keys.insert(candidate_key(c));

  for (double seconds : {1e-5, 1e-3}) {
    robust::Budget b;
    b.set_time_budget(seconds);
    ise::EnumOptions opts = exact_opts;
    opts.budget = &b;
    const auto truncated = ise::enumerate_candidates(d, lib(), opts);
    EXPECT_LE(truncated.size(), exact.size());
    for (const auto& c : truncated)
      EXPECT_EQ(exact_keys.count(candidate_key(c)), 1u)
          << "truncated run emitted a candidate the exact run never did";
  }
}

// --- CLI: the --threads flag -------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int run_captured(const std::vector<std::string>& args,
                 const std::string& stdout_path) {
  ::fflush(stdout);
  ::fflush(stderr);
  const int out = ::dup(1), err = ::dup(2);
  const int cap = ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                         0644);
  const int null = ::open("/dev/null", O_WRONLY);
  ::dup2(cap, 1);
  ::dup2(null, 2);
  const int rc = cli::run(args);
  ::fflush(stdout);
  ::fflush(stderr);
  ::dup2(out, 1);
  ::dup2(err, 2);
  ::close(out);
  ::close(err);
  ::close(cap);
  ::close(null);
  return rc;
}

TEST(ParallelDeterminism, ThreadsFlagParsesAndRejects) {
  const std::string out = "/tmp/isex_threads_flag.txt";
  EXPECT_EQ(run_captured({"--threads", "4", "list"}, out), 0);
  EXPECT_EQ(run_captured({"--threads=2", "list"}, out), 0);
  EXPECT_EQ(run_captured({"--threads", "0", "list"}, out), 2);
  EXPECT_EQ(run_captured({"--threads", "257", "list"}, out), 2);
  EXPECT_EQ(run_captured({"--threads", "nope", "list"}, out), 2);
  EXPECT_EQ(run_captured({"--threads=", "list"}, out), 2);
  util::set_max_threads(0);
  std::remove(out.c_str());
}

TEST(ParallelDeterminism, ParanoidCertifyByteIdenticalAcrossThreadCounts) {
  const std::string report = "/tmp/isex_par_certify.json";
  const std::string out = "/tmp/isex_par_certify_stdout.txt";
  auto args = [&](const char* threads) -> std::vector<std::string> {
    return {threads, "--paranoid", "certify", "crc32", "sha", "-o", report};
  };
  ASSERT_EQ(run_captured(args("--threads=1"), out), 0);
  const std::string report1 = slurp(report);
  const std::string stdout1 = slurp(out);
  ASSERT_FALSE(report1.empty());
  for (const char* t : {"--threads=2", "--threads=8"}) {
    ASSERT_EQ(run_captured(args(t), out), 0);
    EXPECT_EQ(report1, slurp(report)) << t;
    EXPECT_EQ(stdout1, slurp(out)) << t;
  }
  util::set_max_threads(0);
  std::remove(report.c_str());
  std::remove(out.c_str());
}

}  // namespace
}  // namespace isex
