// Chapter 8 tests: fixed-point numerics and the bio-monitoring kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "isex/biomon/biomon.hpp"
#include "isex/biomon/fixed_point.hpp"
#include "isex/hw/cell_library.hpp"

namespace isex::biomon {
namespace {

TEST(FixedPoint, RoundTripAndBasicOps) {
  const Q15 a = Q15::from_double(1.5);
  const Q15 b = Q15::from_double(-0.25);
  EXPECT_NEAR(a.to_double(), 1.5, 1e-4);
  EXPECT_NEAR((a + b).to_double(), 1.25, 1e-4);
  EXPECT_NEAR((a - b).to_double(), 1.75, 1e-4);
  EXPECT_NEAR((a * b).to_double(), -0.375, 1e-4);
  EXPECT_NEAR((a / b).to_double(), -6.0, 1e-3);
  EXPECT_NEAR(b.abs().to_double(), 0.25, 1e-4);
  EXPECT_TRUE(b < a);
}

TEST(FixedPoint, IntConstruction) {
  EXPECT_DOUBLE_EQ(Q8::from_int(3).to_double(), 3.0);
  EXPECT_EQ(Q8::from_int(3).raw(), 3 << 8);
}

class FixedPointAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointAccuracy, TracksDoubleWithinQuantization) {
  // Products of values in [-2, 2] stay within a few LSBs of the double
  // result — the conversion-validity property Section 8.2.1 relies on.
  const double x = -2.0 + 0.13 * GetParam();
  const double y = 1.7 - 0.11 * GetParam();
  const Q15 fx = Q15::from_double(x);
  const Q15 fy = Q15::from_double(y);
  EXPECT_NEAR((fx * fy).to_double(), x * y, 4.0 / (1 << 15));
  EXPECT_NEAR((fx + fy).to_double(), x + y, 2.0 / (1 << 15));
}

INSTANTIATE_TEST_SUITE_P(Grid, FixedPointAccuracy, ::testing::Range(0, 30));

TEST(BeatDetector, CountsSyntheticBeats) {
  // 8 beats: a periodic spike train over a flat baseline.
  std::vector<double> ecg;
  for (int beat = 0; beat < 8; ++beat) {
    for (int i = 0; i < 60; ++i) ecg.push_back(0.05);
    ecg.push_back(0.9);  // R peak (sharp edge the band-pass amplifies)
    ecg.push_back(-0.4);
  }
  EXPECT_EQ(detect_beats_fixed(ecg, 0.05), 8);
}

TEST(BeatDetector, SilenceHasNoBeats) {
  std::vector<double> flat(500, 0.1);
  EXPECT_EQ(detect_beats_fixed(flat, 0.05), 0);
}

TEST(Kernels, AllBuildAndHaveCustomizationHeadroom) {
  const auto& lib = hw::CellLibrary::standard_018um();
  for (auto& prog : all_biomon_kernels()) {
    EXPECT_GE(prog.num_blocks(), 3) << prog.name();
    const double wcet = prog.wcet(ir::Program::sum_cost(
        [&](const ir::Node& n) { return lib.sw_cycles(n); }));
    EXPECT_GT(wcet, 1000) << prog.name();
    // Every kernel has at least one multiply-rich block (fixed-point MACs),
    // the customization target.
    bool has_mul = false;
    for (const auto& b : prog.blocks())
      for (const auto& n : b.dfg.nodes())
        if (n.op == ir::Opcode::kMul || n.op == ir::Opcode::kMac)
          has_mul = true;
    EXPECT_TRUE(has_mul) << prog.name();
  }
}

}  // namespace
}  // namespace isex::biomon
