// The witness-checker layer: genuine solver output must certify clean, and
// every named corruption of it must be rejected. The mutation loops are the
// "no silent pass" proof the certify layer rests on: a checker that lets any
// mutant through fails the corresponding EXPECT by name.
#include "isex/certify/ci.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "isex/certify/mutate.hpp"
#include "isex/certify/pareto.hpp"
#include "isex/certify/schedule.hpp"
#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/ise/enumerate.hpp"
#include "isex/mlgp/mlgp.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/pareto/intra.hpp"
#include "isex/robust/fallback.hpp"
#include "isex/rtreconfig/algorithms.hpp"
#include "isex/workloads/tasks.hpp"
#include "test_util.hpp"

namespace isex::certify {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

// --- CI-legality certificates ------------------------------------------------

TEST(CertifyCi, GenuineCandidatesCertifyClean) {
  util::Rng rng(7);
  const ir::Dfg dfg = isex::testing::random_dfg(rng, 3, 40, 0.1);
  ise::EnumOptions opts;
  const auto pool = ise::enumerate_candidates(dfg, lib(), opts);
  ASSERT_FALSE(pool.empty());
  const auto rep = check_candidate_pool(dfg, lib(), opts.constraints, pool);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.checks, static_cast<long>(pool.size()));
}

TEST(CertifyCi, EveryCandidateMutationIsRejected) {
  util::Rng rng(11);
  const ir::Dfg dfg = isex::testing::random_dfg(rng, 3, 40, 0.1);
  ise::EnumOptions opts;
  const auto pool = ise::enumerate_candidates(dfg, lib(), opts);
  ASSERT_FALSE(pool.empty());
  for (const CandidateMutation m : kCandidateMutations) {
    bool applied = false;
    for (const ise::Candidate& genuine : pool) {
      ASSERT_TRUE(check_candidate(dfg, lib(), opts.constraints, genuine).ok());
      ise::Candidate mutant = genuine;
      if (!apply(m, dfg, mutant)) continue;
      applied = true;
      const auto rep = check_candidate(dfg, lib(), opts.constraints, mutant);
      EXPECT_FALSE(rep.ok())
          << "checker silently passed mutant " << name(m);
      break;
    }
    EXPECT_TRUE(applied) << "mutation " << name(m)
                         << " applied to no candidate";
  }
}

TEST(CertifyCi, NonConvexSetIsRejectedByTheConvexityCheck) {
  // in -> a -> b -> c, S = {a, c}: the a -> b -> c path leaves and re-enters.
  ir::Dfg dfg;
  const ir::NodeId in = dfg.add(ir::Opcode::kInput);
  const ir::NodeId a = dfg.add(ir::Opcode::kAdd, {in, in});
  const ir::NodeId b = dfg.add(ir::Opcode::kXor, {a, a});
  const ir::NodeId c = dfg.add(ir::Opcode::kAdd, {b, b});
  dfg.mark_live_out(c);
  util::Bitset s(static_cast<std::size_t>(dfg.num_nodes()));
  s.set(static_cast<std::size_t>(a));
  s.set(static_cast<std::size_t>(c));
  const ise::Candidate cand = ise::make_candidate(dfg, s, lib(), 0, 1);
  const auto rep = check_candidate(dfg, lib(), ise::Constraints{}, cand);
  ASSERT_FALSE(rep.ok());
  bool convexity = false;
  for (const auto& v : rep.violations) convexity |= v.check == "ci.convexity";
  EXPECT_TRUE(convexity) << rep.summary();
}

TEST(CertifyCi, WrongBlockAndDuplicatePoolAreRejected) {
  util::Rng rng(13);
  const ir::Dfg dfg = isex::testing::random_dfg(rng, 3, 30, 0.1);
  ise::EnumOptions opts;
  auto pool = ise::enumerate_candidates(dfg, lib(), opts);
  ASSERT_FALSE(pool.empty());
  EXPECT_FALSE(
      check_candidate(dfg, lib(), opts.constraints, pool[0], /*block=*/7)
          .ok());
  pool.push_back(pool.front());  // duplicate node set
  EXPECT_FALSE(check_candidate_pool(dfg, lib(), opts.constraints, pool).ok());
}

TEST(CertifyCi, PartitionOverlapAndEscapeAreRejected) {
  util::Rng rng(17);
  ir::Dfg dfg;
  mlgp::MlgpOptions mo;
  std::vector<ise::Candidate> parts;
  // random_dfg graphs occasionally yield no >=2-node parts; scan seeds.
  for (std::uint64_t seed = 17; parts.empty() && seed < 40; ++seed) {
    util::Rng r2(seed);
    dfg = isex::testing::random_dfg(r2, 3, 40, 0.1);
    parts = mlgp::generate_for_block(dfg, lib(), mo, r2);
  }
  ASSERT_FALSE(parts.empty());
  util::Bitset region(static_cast<std::size_t>(dfg.num_nodes()));
  for (const auto& reg : dfg.regions()) region |= reg;
  ASSERT_TRUE(check_partition(dfg, lib(), mo.constraints, region, parts).ok());

  auto overlap = parts;
  overlap.push_back(parts.front());
  EXPECT_FALSE(
      check_partition(dfg, lib(), mo.constraints, region, overlap).ok());

  util::Bitset shrunk = region;
  shrunk.reset(static_cast<std::size_t>(parts.front().nodes.to_vector()[0]));
  EXPECT_FALSE(
      check_partition(dfg, lib(), mo.constraints, shrunk, parts).ok());
}

// --- selection-feasibility certificates --------------------------------------

rt::TaskSet small_taskset() {
  auto ts = workloads::make_taskset({"crc32", "sha", "g721decode"}, 1.05);
  ts.sort_by_period();
  return ts;
}

TEST(CertifySched, GenuineEdfSelectionCertifiesClean) {
  const auto ts = small_taskset();
  const double budget = 0.5 * ts.max_area();
  const auto r = customize::select_edf(ts, budget);
  const auto rep = check_selection_edf(ts, budget, r);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(CertifySched, GenuineRmsSelectionCertifiesClean) {
  const auto ts = small_taskset();
  const double budget = 0.5 * ts.max_area();
  const auto r = customize::select_rms(ts, budget);
  const auto rep = check_selection_rms(ts, budget, r);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(CertifySched, EverySelectionMutationIsRejectedForEdf) {
  const auto ts = small_taskset();
  const double budget = 0.5 * ts.max_area();
  const auto genuine = customize::select_edf(ts, budget);
  ASSERT_TRUE(check_selection_edf(ts, budget, genuine).ok());
  for (const SelectionMutation m : kSelectionMutations) {
    customize::SelectionResult mutant = genuine;
    ASSERT_TRUE(apply(m, ts, mutant)) << name(m);
    EXPECT_FALSE(check_selection_edf(ts, budget, mutant).ok())
        << "checker silently passed mutant " << name(m);
  }
}

TEST(CertifySched, EverySelectionMutationIsRejectedForRms) {
  const auto ts = small_taskset();
  const double budget = 0.5 * ts.max_area();
  const auto genuine = customize::select_rms(ts, budget);
  ASSERT_TRUE(check_selection_rms(ts, budget, genuine).ok());
  for (const SelectionMutation m : kSelectionMutations) {
    customize::RmsResult mutant = genuine;
    ASSERT_TRUE(apply(m, ts, mutant)) << name(m);
    EXPECT_FALSE(check_selection_rms(ts, budget, mutant).ok())
        << "checker silently passed mutant " << name(m);
  }
}

TEST(CertifySched, SpotChecksAgreeWithGenuineAnswersAndCatchLies) {
  const auto ts = small_taskset();
  const double budget = 0.5 * ts.max_area();
  const auto edf = customize::select_edf(ts, budget);
  ASSERT_EQ(edf.status, robust::Status::kExact);
  const double grid = customize::EdfOptions{}.area_grid;
  auto rep = spot_check_edf(ts, budget, grid, edf, 2000000);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.checks, 0) << "spot check skipped a small instance";

  customize::SelectionResult lying = edf;
  lying.utilization += 0.05;  // claims a worse optimum than brute force finds
  EXPECT_FALSE(spot_check_edf(ts, budget, grid, lying, 2000000).ok());

  const auto rms = customize::select_rms(ts, budget);
  ASSERT_TRUE(rms.completed);
  rep = spot_check_rms(ts, budget, rms, 2000000);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.checks, 0);

  customize::RmsResult rms_lying = rms;
  rms_lying.utilization += 0.05;
  EXPECT_FALSE(spot_check_rms(ts, budget, rms_lying, 2000000).ok());
}

TEST(CertifySched, RtreconfigSolutionsCertifyCleanAndCorruptionsAreCaught) {
  rtreconfig::Problem p;
  util::Rng rng(23);
  for (int i = 0; i < 5; ++i) {
    rtreconfig::TaskCis t;
    t.name = "t" + std::to_string(i);
    t.period = 1000.0 * (i + 1);
    t.versions.push_back({0.0, 400.0 * (i + 1)});
    for (int v = 1; v <= 2; ++v)
      t.versions.push_back(
          {static_cast<double>(5 * v), 400.0 * (i + 1) / (1 + v)});
    p.tasks.push_back(std::move(t));
  }
  p.max_area = 8;
  p.reconfig_cost = 20;
  for (const auto& s :
       {rtreconfig::dp_partition(p), rtreconfig::static_partition(p)}) {
    ASSERT_TRUE(check_rtreconfig(p, s).ok());
    auto bad_util = s;
    bad_util.utilization += 0.5;
    EXPECT_FALSE(check_rtreconfig(p, bad_util).ok());
    auto bad_flag = s;
    bad_flag.schedulable = !bad_flag.schedulable;
    EXPECT_FALSE(check_rtreconfig(p, bad_flag).ok());
    auto mismatch = s;
    if (!mismatch.version.empty()) {
      mismatch.version[0] = 1;
      mismatch.config[0] = -1;  // hardware version with no configuration
      EXPECT_FALSE(check_rtreconfig(p, mismatch).ok());
    }
  }
}

// --- Pareto certificates -----------------------------------------------------

pareto::Front sample_front() {
  std::vector<pareto::Item> items;
  util::Rng rng(29);
  for (int i = 0; i < 10; ++i)
    items.push_back({1 + static_cast<int>(rng.uniform_int(1, 6)),
                     static_cast<double>(rng.uniform_int(5, 50))});
  return pareto::exact_workload_front(items, 500);
}

TEST(CertifyPareto, GenuineFrontsCertifyCleanIncludingEpsCover) {
  const auto exact = sample_front();
  ASSERT_GE(exact.size(), 2u);
  EXPECT_TRUE(check_front(exact, "exact").ok());
  std::vector<pareto::Item> items;
  util::Rng rng(29);
  for (int i = 0; i < 10; ++i)
    items.push_back({1 + static_cast<int>(rng.uniform_int(1, 6)),
                     static_cast<double>(rng.uniform_int(5, 50))});
  const auto approx = pareto::approx_workload_front(items, 500, 0.3);
  EXPECT_TRUE(check_front(approx, "approx").ok());
  EXPECT_TRUE(check_eps_cover(exact, approx, 0.3).ok());
}

TEST(CertifyPareto, EveryFrontMutationIsRejected) {
  const auto genuine = sample_front();
  ASSERT_GE(genuine.size(), 2u);
  ASSERT_TRUE(check_front(genuine, "front").ok());
  for (const FrontMutation m : kFrontMutations) {
    pareto::Front mutant = genuine;
    ASSERT_TRUE(apply(m, mutant)) << name(m);
    EXPECT_FALSE(check_front(mutant, "front").ok())
        << "checker silently passed mutant " << name(m);
  }
}

TEST(CertifyPareto, MissingCoverageFailsTheEpsCoverCheck) {
  const pareto::Front exact = {{1, 100}, {5, 50}, {9, 10}};
  const pareto::Front gappy = {{1, 100}};  // nothing near (9, 10)
  EXPECT_FALSE(check_eps_cover(exact, gappy, 0.1).ok());
  EXPECT_FALSE(check_eps_cover(exact, {}, 0.1).ok());
}

// --- ladder integration ------------------------------------------------------

TEST(CertifyLadder, FailedCertificateDemotesTheRung) {
  using R = int;
  std::vector<std::pair<std::string, std::function<robust::Outcome<R>(
                                         robust::Budget*)>>>
      rungs;
  rungs.emplace_back("bogus", [](robust::Budget*) {
    robust::Outcome<R> r;
    r.value = -1;  // the certifier below rejects negative answers
    return r;
  });
  rungs.emplace_back("honest", [](robust::Budget*) {
    robust::Outcome<R> r;
    r.value = 42;
    return r;
  });
  const std::uint64_t before =
      obs::Registry::global().counter("certify.rung_demotions").get();
  std::function<CertifyReport(const robust::Outcome<R>&)> certifier =
      [](const robust::Outcome<R>& o) {
        CertifyReport rep;
        if (o.value < 0)
          rep.fail("test.sign", "negative answer");
        else
          rep.pass();
        return rep;
      };
  const auto out = robust::solve_with_fallback<R>(
      nullptr, robust::FallbackOptions{}, rungs,
      [](const robust::Outcome<R>& a, const robust::Outcome<R>& b) {
        return a.value > b.value;
      },
      certifier);
  EXPECT_EQ(out.value, 42);
  EXPECT_TRUE(out.certificate.ok());
  EXPECT_NE(out.detail.find("bogus:certify-failed"), std::string::npos)
      << out.detail;
  EXPECT_EQ(out.status, robust::Status::kDegraded);
#if ISEX_OBS_ENABLED
  EXPECT_EQ(obs::Registry::global().counter("certify.rung_demotions").get(),
            before + 1);
#else
  (void)before;
#endif
}

TEST(CertifyLadder, AllRungsFailingReturnsTheFailedCertificate) {
  using R = int;
  std::vector<std::pair<std::string, std::function<robust::Outcome<R>(
                                         robust::Budget*)>>>
      rungs;
  for (const char* n : {"r0", "r1"})
    rungs.emplace_back(n, [](robust::Budget*) {
      robust::Outcome<R> r;
      r.value = -1;
      return r;
    });
  std::function<CertifyReport(const robust::Outcome<R>&)> certifier =
      [](const robust::Outcome<R>&) {
        CertifyReport rep;
        rep.fail("test.always", "rejected");
        return rep;
      };
  const auto out = robust::solve_with_fallback<R>(
      nullptr, robust::FallbackOptions{}, rungs,
      [](const robust::Outcome<R>& a, const robust::Outcome<R>& b) {
        return a.value > b.value;
      },
      certifier);
  EXPECT_FALSE(out.certificate.ok());
}

TEST(CertifyLadder, RealLaddersCarryPassingCertificates) {
  const auto ts = small_taskset();
  const double budget = 0.5 * ts.max_area();
  robust::Budget b;
  b.set_node_budget(1000000);
  const auto edf = robust::select_edf_with_fallback(
      ts, budget, customize::EdfOptions{}, &b);
  EXPECT_TRUE(edf.certificate.ok()) << edf.certificate.summary();
  EXPECT_GT(edf.certificate.checks, 0);
  robust::Budget b2;
  b2.set_node_budget(1000000);
  const auto rms = robust::select_rms_with_fallback(
      ts, budget, customize::RmsOptions{}, &b2);
  EXPECT_TRUE(rms.certificate.ok()) << rms.certificate.summary();

  util::Rng rng(31);
  const ir::Dfg dfg = isex::testing::random_dfg(rng, 3, 30, 0.1);
  robust::Budget b3;
  b3.set_node_budget(1000000);
  const auto pool = robust::enumerate_with_fallback(
      dfg, lib(), ise::EnumOptions{}, &b3);
  EXPECT_TRUE(pool.certificate.ok()) << pool.certificate.summary();
  EXPECT_GT(pool.certificate.checks, 0);
}

// --- cell-library validation -------------------------------------------------

std::array<hw::OpCost, ir::kNumOpcodes> uniform_table() {
  std::array<hw::OpCost, ir::kNumOpcodes> t{};
  for (auto& c : t) c = hw::OpCost{1, 1.0, 1.0};
  return t;
}

TEST(CellLibraryValidate, ShippedLibrariesAreValid) {
  EXPECT_EQ(hw::CellLibrary::standard_018um().validate(), "");
  EXPECT_EQ(hw::CellLibrary::conservative_018um().validate(), "");
}

TEST(CellLibraryValidate, CorruptEntriesAreDiagnosedByName) {
  {
    auto t = uniform_table();
    t[static_cast<std::size_t>(ir::Opcode::kAdd)].area = 0;
    const hw::CellLibrary bad(t, 8.33);
    EXPECT_NE(bad.validate().find("add"), std::string::npos)
        << bad.validate();
  }
  {
    auto t = uniform_table();
    t[static_cast<std::size_t>(ir::Opcode::kMul)].hw_latency_ns = -1;
    EXPECT_FALSE(hw::CellLibrary(t, 8.33).validate().empty());
  }
  {
    auto t = uniform_table();
    t[static_cast<std::size_t>(ir::Opcode::kLoad)].sw_cycles = 0;
    EXPECT_FALSE(hw::CellLibrary(t, 8.33).validate().empty());
  }
  EXPECT_FALSE(hw::CellLibrary(uniform_table(), 0).validate().empty());
  EXPECT_FALSE(hw::CellLibrary(uniform_table(), 8.33, 0, -1).validate().empty());
}

}  // namespace
}  // namespace isex::certify
