// Chapter 3 core tests: the EDF dynamic program and the RMS branch-and-bound
// against exhaustive ground truth, plus the Fig 3.2 motivating example.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "isex/customize/heuristics.hpp"
#include "isex/customize/motivating.hpp"
#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/rt/schedulability.hpp"
#include "test_util.hpp"

namespace isex::customize {
namespace {

/// Exhaustive minimum utilization over all assignments within the budget;
/// if rms is set, only RMS-schedulable assignments qualify.
double brute_min_util(const rt::TaskSet& ts, double budget, bool rms) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> assignment(ts.size(), 0);
  std::function<void(std::size_t, double)> rec = [&](std::size_t i, double area) {
    if (i == ts.size()) {
      if (rms) {
        std::vector<double> c, p;
        for (std::size_t k = 0; k < ts.size(); ++k) {
          c.push_back(
              ts.tasks[k].configs[static_cast<std::size_t>(assignment[k])].cycles);
          p.push_back(ts.tasks[k].period);
        }
        if (!rt::rms_schedulable(c, p)) return;
      }
      best = std::min(best, ts.utilization(assignment));
      return;
    }
    for (std::size_t j = 0; j < ts.tasks[i].configs.size(); ++j) {
      const double a = ts.tasks[i].configs[j].area;
      if (a > area + 1e-9) continue;
      assignment[i] = static_cast<int>(j);
      rec(i + 1, area - a);
    }
    assignment[i] = 0;
  };
  rec(0, budget);
  return best;
}

TEST(Motivating, SoftwareOnlyIsUnschedulable) {
  const auto ts = motivating_example();
  EXPECT_NEAR(ts.sw_utilization(), 29.0 / 24.0, 1e-12);
}

TEST(Motivating, AllFourHeuristicsFail) {
  const auto ts = motivating_example();
  // Fig 3.2(a): equal split leaves every task in software, U' = 29/24.
  auto a = select_heuristic(ts, kMotivatingAreaBudget,
                            Heuristic::kEqualAreaDivision);
  EXPECT_NEAR(a.utilization, 29.0 / 24.0, 1e-12);
  EXPECT_FALSE(a.schedulable);
  // Fig 3.2(b,c,d): each customizes only T1, U' = 25/24.
  for (auto h : {Heuristic::kSmallestDeadlineFirst,
                 Heuristic::kHighestUtilReduction,
                 Heuristic::kBestGainAreaRatio}) {
    auto r = select_heuristic(ts, kMotivatingAreaBudget, h);
    EXPECT_NEAR(r.utilization, 25.0 / 24.0, 1e-12) << heuristic_name(h);
    EXPECT_FALSE(r.schedulable) << heuristic_name(h);
  }
}

TEST(Motivating, OptimalEdfSelectionSchedulesTheSet) {
  const auto ts = motivating_example();
  const auto r = select_edf(ts, kMotivatingAreaBudget, EdfOptions{1.0});
  EXPECT_TRUE(r.schedulable);
  EXPECT_NEAR(r.utilization, 1.0, 1e-12);
  // Fig 3.2(e): T1 in software, T2 and T3 customized.
  EXPECT_EQ(r.assignment, (std::vector<int>{0, 1, 1}));
  EXPECT_NEAR(r.area_used, 10.0, 1e-12);
}

class EdfDpProperty : public ::testing::TestWithParam<int> {};

TEST_P(EdfDpProperty, MatchesExhaustiveOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 3);
  auto ts = isex::testing::random_taskset(rng, rng.uniform_int(2, 5), 4);
  const double budget = rng.uniform_int(0, 80);
  const auto r = select_edf(ts, budget, EdfOptions{1.0});
  // Areas are integers in the generator, so grid 1.0 is exact.
  EXPECT_NEAR(r.utilization, brute_min_util(ts, budget, false), 1e-9);
  EXPECT_LE(r.area_used, budget + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfDpProperty, ::testing::Range(0, 25));

TEST(EdfDp, MonotoneInBudget) {
  util::Rng rng(1234);
  auto ts = isex::testing::random_taskset(rng, 4, 5);
  double prev = std::numeric_limits<double>::infinity();
  for (double budget = 0; budget <= ts.max_area(); budget += 10) {
    const auto r = select_edf(ts, budget, EdfOptions{1.0});
    EXPECT_LE(r.utilization, prev + 1e-12);
    prev = r.utilization;
  }
}

class RmsBnbProperty : public ::testing::TestWithParam<int> {};

TEST_P(RmsBnbProperty, MatchesExhaustiveOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 73 + 9);
  auto ts = isex::testing::random_taskset(rng, rng.uniform_int(2, 4), 3);
  // Push software utilization near 1 so RMS feasibility is non-trivial.
  ts.set_periods_for_utilization(rng.uniform_real(0.85, 1.15));
  ts.sort_by_period();
  const double budget = rng.uniform_int(0, 60);
  const auto r = select_rms(ts, budget);
  const double expected = brute_min_util(ts, budget, true);
  if (std::isinf(expected)) {
    EXPECT_FALSE(r.found_feasible);
  } else {
    ASSERT_TRUE(r.found_feasible);
    EXPECT_NEAR(r.utilization, expected, 1e-9);
    // The returned assignment really is RMS-schedulable.
    std::vector<double> c, p;
    for (std::size_t k = 0; k < ts.size(); ++k) {
      c.push_back(
          ts.tasks[k].configs[static_cast<std::size_t>(r.assignment[k])].cycles);
      p.push_back(ts.tasks[k].period);
    }
    EXPECT_TRUE(rt::rms_schedulable(c, p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmsBnbProperty, ::testing::Range(0, 25));

// Ablation: disabling the utilization bound or the fastest-first order must
// not change the optimum, only the node count.
TEST(RmsBnb, PruningAblationPreservesOptimum) {
  util::Rng rng(777);
  auto ts = isex::testing::random_taskset(rng, 4, 4);
  ts.set_periods_for_utilization(1.05);
  ts.sort_by_period();
  const double budget = 50;
  const auto full = select_rms(ts, budget);
  RmsOptions no_bound;
  no_bound.use_bound_pruning = false;
  const auto nb = select_rms(ts, budget, no_bound);
  RmsOptions no_order;
  no_order.fastest_first = false;
  const auto no = select_rms(ts, budget, no_order);
  EXPECT_EQ(full.found_feasible, nb.found_feasible);
  EXPECT_EQ(full.found_feasible, no.found_feasible);
  if (full.found_feasible) {
    EXPECT_NEAR(full.utilization, nb.utilization, 1e-12);
    EXPECT_NEAR(full.utilization, no.utilization, 1e-12);
  }
  EXPECT_LE(full.nodes_visited, nb.nodes_visited);
}

TEST(SetPeriods, HitsRequestedUtilization) {
  util::Rng rng(5);
  auto ts = isex::testing::random_taskset(rng, 5, 3);
  for (double u : {0.8, 1.0, 1.05, 1.08, 1.1}) {
    ts.set_periods_for_utilization(u);
    EXPECT_NEAR(ts.sw_utilization(), u, 1e-9);
  }
}

}  // namespace
}  // namespace isex::customize
