// The CLI driver as a library: exit codes, I/O-error hardening, malformed
// argument diagnostics, and the global budget/strict flags — all exercised
// in-process through isex::cli::run, i.e. exactly the code path the shipped
// binary runs.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "isex/cli/driver.hpp"

namespace isex::cli {
namespace {

/// Runs the CLI with stdout/stderr redirected to /dev/null (the commands
/// print tables; the tests only care about the exit code).
int run_quiet(const std::vector<std::string>& args) {
  ::fflush(stdout);
  ::fflush(stderr);
  const int out = ::dup(1), err = ::dup(2);
  const int null = ::open("/dev/null", O_WRONLY);
  ::dup2(null, 1);
  ::dup2(null, 2);
  const int rc = run(args);
  ::fflush(stdout);
  ::fflush(stderr);
  ::dup2(out, 1);
  ::dup2(err, 2);
  ::close(out);
  ::close(err);
  ::close(null);
  return rc;
}

TEST(Cli, NoArgsIsUsageError) { EXPECT_EQ(run_quiet({}), 2); }

TEST(Cli, UnknownCommandIsUsageError) {
  EXPECT_EQ(run_quiet({"frobnicate"}), 2);
}

TEST(Cli, ListSucceeds) { EXPECT_EQ(run_quiet({"list"}), 0); }

TEST(Cli, MalformedNumbersExitTwoNotCrash) {
  EXPECT_EQ(run_quiet({"select", "abc", "0.5", "edf", "crc32"}), 2);
  EXPECT_EQ(run_quiet({"select", "1.08", "nan-ish", "edf", "crc32"}), 2);
  EXPECT_EQ(run_quiet({"select", "1.08", "1.5", "edf", "crc32"}), 2);  // > 1
  EXPECT_EQ(run_quiet({"select", "-2", "0.5", "edf", "crc32"}), 2);    // <= 0
  EXPECT_EQ(run_quiet({"select", "1.08", "0.5", "lifo", "crc32"}), 2);
  EXPECT_EQ(run_quiet({"reconfig", "ten", "7"}), 2);
  EXPECT_EQ(run_quiet({"reconfig", "10", "-7"}), 2);
  EXPECT_EQ(run_quiet({"pareto", "crc32", "0"}), 2);  // eps must be > 0
}

TEST(Cli, UnknownBenchmarkExitsTwoWithSuggestion) {
  EXPECT_EQ(run_quiet({"curve", "crc33"}), 2);
  EXPECT_EQ(run_quiet({"select", "1.08", "0.5", "edf", "nosuchkernel"}), 2);
}

TEST(Cli, MalformedBudgetFlagsExitTwo) {
  EXPECT_EQ(run_quiet({"--time-budget", "soon", "list"}), 2);
  EXPECT_EQ(run_quiet({"--time-budget", "-5ms", "list"}), 2);
  EXPECT_EQ(run_quiet({"--time-budget=0", "list"}), 2);
  EXPECT_EQ(run_quiet({"--node-budget", "many", "list"}), 2);
  EXPECT_EQ(run_quiet({"--mem-budget", "-1G", "list"}), 2);
  EXPECT_EQ(run_quiet({"list", "--time-budget"}), 2);  // missing value
}

TEST(Cli, WellFormedBudgetFlagsAreAcceptedAnywhere) {
  EXPECT_EQ(run_quiet({"--time-budget", "2s", "list"}), 0);
  EXPECT_EQ(run_quiet({"list", "--node-budget=500K"}), 0);
  EXPECT_EQ(run_quiet({"--mem-budget", "64M", "--strict", "list"}), 0);
}

TEST(Cli, UnwritableMetricsPathExitsTwo) {
  EXPECT_EQ(run_quiet({"--metrics=/nonexistent-dir/m.json", "list"}), 2);
  EXPECT_EQ(run_quiet({"--metrics=/tmp/isex_cli_test_metrics.json", "list"}),
            0);
  std::remove("/tmp/isex_cli_test_metrics.json");
}

TEST(Cli, UnwritableTraceOutputExitsTwo) {
  EXPECT_EQ(run_quiet({"trace", "crc32", "-o", "/nonexistent-dir/t.json"}), 2);
}

TEST(Cli, SelectRunsAndReportsSchedulability) {
  // Two small kernels at low utilization: schedulable, exit 0.
  EXPECT_EQ(run_quiet({"select", "1.08", "0.5", "edf", "crc32", "sha"}), 0);
}

TEST(Cli, StrictWithStarvationBudgetExitsThree) {
  // One node of budget cannot finish the RMS branch-and-bound: the ladder
  // returns a non-Exact status and --strict turns that into exit 3.
  EXPECT_EQ(run_quiet({"--node-budget", "1", "--strict", "select", "1.08",
                       "0.5", "rms", "crc32", "sha"}),
            3);
  // Same run without --strict keeps the schedulability exit code.
  EXPECT_EQ(run_quiet({"--node-budget", "1", "select", "1.08", "0.5", "rms",
                       "crc32", "sha"}),
            0);
}

TEST(Cli, BudgetedSelectStillSucceedsUnderGenerousBudget) {
  EXPECT_EQ(run_quiet({"--time-budget", "5s", "--strict", "select", "1.08",
                       "0.5", "edf", "crc32", "sha"}),
            0);
}

TEST(Cli, CertifyWithoutBenchmarksIsUsageError) {
  EXPECT_EQ(run_quiet({"certify"}), 2);
  EXPECT_EQ(run_quiet({"certify", "crc33"}), 2);  // unknown benchmark
  EXPECT_EQ(run_quiet({"certify", "crc32", "--u0", "zero"}), 2);
  EXPECT_EQ(run_quiet({"certify", "crc32", "-o", "/nonexistent-dir/c.json"}),
            2);
}

TEST(Cli, CertifyPassesOnGenuineSolverOutput) {
  // Every stage's witness checker must accept the real solvers' answers.
  EXPECT_EQ(run_quiet({"certify", "crc32"}), 0);
}

TEST(Cli, ParanoidSelectCertifiesCleanOnGenuineOutput) {
  EXPECT_EQ(run_quiet({"--paranoid", "select", "1.08", "0.5", "edf", "crc32",
                       "sha"}),
            0);
  EXPECT_EQ(run_quiet({"--paranoid", "--node-budget=200K", "select", "1.08",
                       "0.5", "rms", "crc32", "sha"}),
            0);
}

}  // namespace
}  // namespace isex::cli
