// Differential test of the budget layer: over ~200 small random task sets,
//   * budget-unlimited select_edf / select_rms match exhaustive brute force
//     (the budget plumbing changed no answers);
//   * budget-truncated runs always return a feasible assignment and are
//     never better than the exact optimum (anytime results are real
//     solutions, not accounting artifacts);
//   * the reported optimality gap actually bounds the distance to the
//     optimum.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/robust/fallback.hpp"
#include "isex/rt/schedulability.hpp"
#include "test_util.hpp"

namespace isex::customize {
namespace {

/// Exhaustive minimum utilization over all in-budget assignments; when `rms`
/// is set only RMS-schedulable assignments qualify (infinity when none is).
double brute_min_util(const rt::TaskSet& ts, double budget, bool rms) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> assignment(ts.size(), 0);
  std::function<void(std::size_t, double)> rec = [&](std::size_t i,
                                                     double area) {
    if (i == ts.size()) {
      if (rms) {
        std::vector<double> c, p;
        for (std::size_t k = 0; k < ts.size(); ++k) {
          c.push_back(ts.tasks[k]
                          .configs[static_cast<std::size_t>(assignment[k])]
                          .cycles);
          p.push_back(ts.tasks[k].period);
        }
        if (!rt::rms_schedulable(c, p)) return;
      }
      best = std::min(best, ts.utilization(assignment));
      return;
    }
    for (std::size_t j = 0; j < ts.tasks[i].configs.size(); ++j) {
      const double a = ts.tasks[i].configs[j].area;
      if (a > area + 1e-9) continue;
      assignment[i] = static_cast<int>(j);
      rec(i + 1, area - a);
    }
    assignment[i] = 0;
  };
  rec(0, budget);
  return best;
}

double assignment_area(const rt::TaskSet& ts, const std::vector<int>& a) {
  double area = 0;
  for (std::size_t i = 0; i < ts.size(); ++i)
    area += ts.tasks[i].configs[static_cast<std::size_t>(a[i])].area;
  return area;
}

/// The grid DP rounds configuration areas up to the grid, so its feasible
/// set is a subset of the continuous one; compare against brute force over
/// the same gridded areas to keep the oracle exact.
rt::TaskSet snap_to_grid(rt::TaskSet ts, double grid) {
  for (auto& t : ts.tasks)
    for (auto& c : t.configs)
      c.area = std::ceil(c.area / grid - 1e-9) * grid;
  return ts;
}

TEST(BudgetDifferential, UnlimitedEdfMatchesBruteForce) {
  util::Rng rng(1007);
  constexpr double kGrid = 1.0;
  for (int it = 0; it < 100; ++it) {
    auto ts = snap_to_grid(
        testing::random_taskset(rng, rng.uniform_int(2, 5), 4), kGrid);
    ts.sort_by_period();
    const double budget =
        std::floor(rng.uniform_real(0.2, 0.8) * ts.max_area());
    customize::EdfOptions o;
    o.area_grid = kGrid;
    const auto out = customize::select_edf_bounded(ts, budget, o);
    ASSERT_EQ(out.status, robust::Status::kExact);
    const double brute = brute_min_util(ts, budget, false);
    EXPECT_NEAR(out.value.utilization, brute, 1e-9)
        << "it=" << it << " budget=" << budget;
    EXPECT_LE(assignment_area(ts, out.value.assignment), budget + 1e-9);
  }
}

TEST(BudgetDifferential, UnlimitedRmsMatchesBruteForce) {
  util::Rng rng(2011);
  for (int it = 0; it < 100; ++it) {
    auto ts = testing::random_taskset(rng, rng.uniform_int(2, 4), 4);
    ts.sort_by_period();
    const double budget = rng.uniform_real(0.2, 0.8) * ts.max_area();
    const auto out = customize::select_rms_bounded(ts, budget, {});
    const double brute = brute_min_util(ts, budget, true);
    if (std::isinf(brute)) {
      // No RMS-schedulable assignment exists within the budget.
      EXPECT_FALSE(out.value.found_feasible);
    } else {
      ASSERT_EQ(out.status, robust::Status::kExact) << "it=" << it;
      EXPECT_NEAR(out.value.utilization, brute, 1e-9) << "it=" << it;
      EXPECT_LE(assignment_area(ts, out.value.assignment), budget + 1e-9);
    }
  }
}

TEST(BudgetDifferential, TruncatedEdfNeverBeatsExactAndGapHolds) {
  util::Rng rng(3019);
  constexpr double kGrid = 1.0;
  for (int it = 0; it < 100; ++it) {
    auto ts = snap_to_grid(
        testing::random_taskset(rng, rng.uniform_int(3, 5), 4), kGrid);
    ts.sort_by_period();
    const double budget =
        std::floor(rng.uniform_real(0.2, 0.8) * ts.max_area());
    const double exact = brute_min_util(ts, budget, false);

    robust::Budget b;
    b.set_node_budget(rng.uniform_int(1, 12));
    customize::EdfOptions o;
    o.area_grid = kGrid;
    o.budget = &b;
    const auto out = customize::select_edf_bounded(ts, budget, o);
    // Feasible: real assignment within the area budget.
    ASSERT_EQ(out.value.assignment.size(), ts.size());
    EXPECT_LE(assignment_area(ts, out.value.assignment), budget + 1e-9);
    // Never better than the true optimum.
    EXPECT_GE(out.value.utilization, exact - 1e-9);
    if (out.status == robust::Status::kBudgetTruncated) {
      // The reported gap really bounds the distance to the optimum.
      const double lb = out.value.utilization / (1 + out.optimality_gap);
      EXPECT_LE(lb, exact + 1e-9) << "it=" << it;
    }
  }
}

TEST(BudgetDifferential, TruncatedRmsNeverBeatsExact) {
  util::Rng rng(4021);
  for (int it = 0; it < 60; ++it) {
    auto ts = testing::random_taskset(rng, rng.uniform_int(3, 4), 4);
    ts.sort_by_period();
    const double budget = rng.uniform_real(0.3, 0.8) * ts.max_area();
    const double exact = brute_min_util(ts, budget, true);

    robust::Budget b;
    b.set_node_budget(rng.uniform_int(1, 10));
    customize::RmsOptions o;
    o.budget = &b;
    const auto out = customize::select_rms_bounded(ts, budget, o);
    EXPECT_LE(assignment_area(ts, out.value.assignment), budget + 1e-9);
    if (out.value.found_feasible && !std::isinf(exact))
      EXPECT_GE(out.value.utilization, exact - 1e-9) << "it=" << it;
  }
}

TEST(BudgetDifferential, LadderResultNeverBeatsExactEither) {
  util::Rng rng(5023);
  constexpr double kGrid = 1.0;
  for (int it = 0; it < 40; ++it) {
    auto ts = snap_to_grid(
        testing::random_taskset(rng, rng.uniform_int(3, 5), 4), kGrid);
    ts.sort_by_period();
    const double budget =
        std::floor(rng.uniform_real(0.3, 0.8) * ts.max_area());
    const double exact = brute_min_util(ts, budget, false);
    robust::Budget b;
    b.set_node_budget(rng.uniform_int(1, 8));
    customize::EdfOptions base;
    base.area_grid = kGrid;
    const auto out = robust::select_edf_with_fallback(ts, budget, base, &b);
    EXPECT_LE(assignment_area(ts, out.value.assignment), budget + 1e-9);
    EXPECT_GE(out.value.utilization, exact - 1e-9) << "it=" << it;
  }
}

}  // namespace
}  // namespace isex::customize
