// util::TaskPool / util::parallel_for — the contract every byte-identical
// parallel solver is built on: fn(i) exactly once per index, full visibility
// on return, deadlock-free nesting, exception propagation.
#include "isex/util/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace isex::util {
namespace {

/// Pins the process-wide thread cap for one test and restores the default
/// afterwards, so test order never leaks a cap into other suites.
class ThreadCap {
 public:
  explicit ThreadCap(int n) { set_max_threads(n); }
  ~ThreadCap() { set_max_threads(0); }
};

TEST(TaskPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(TaskPoolTest, SetMaxThreadsOverridesAndResets) {
  set_max_threads(7);
  EXPECT_EQ(max_threads(), 7);
  set_max_threads(0);  // back to ISEX_THREADS/hardware default
  EXPECT_GE(max_threads(), 1);
}

TEST(TaskPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadCap cap(8);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPoolTest, WritesAreVisibleAfterReturn) {
  ThreadCap cap(4);
  constexpr std::size_t kN = 4096;
  std::vector<std::size_t> out(kN, 0);
  parallel_for(kN, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], i * i);
}

TEST(TaskPoolTest, SerialWhenOneThread) {
  ThreadCap cap(1);
  // With the cap at 1 the indices must run in order on the calling thread.
  std::vector<std::size_t> order;
  parallel_for(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskPoolTest, ZeroAndOneItem) {
  ThreadCap cap(8);
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(TaskPoolTest, NestedParallelForCompletes) {
  ThreadCap cap(8);
  constexpr std::size_t kOuter = 16, kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(kOuter, [&](std::size_t o) {
    parallel_for(kInner, [&](std::size_t i) {
      hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  long total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, static_cast<long>(kOuter * kInner));
}

TEST(TaskPoolTest, ExceptionPropagates) {
  ThreadCap cap(4);
  EXPECT_THROW(parallel_for(256,
                            [&](std::size_t i) {
                              if (i == 100)
                                throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must still be usable after an exceptional batch.
  std::atomic<long> sum{0};
  parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(TaskPoolTest, InstancePoolRunsAllIndices) {
  TaskPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(2048);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

/// Stress for the work-stealing deque (and for tsan): many small batches
/// with uneven per-index work, from repeated parallel regions.
TEST(TaskPoolTest, RepeatedUnevenBatchesStress) {
  ThreadCap cap(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    const std::size_t n = 1 + static_cast<std::size_t>(round) * 13 % 300;
    parallel_for(n, [&](std::size_t i) {
      volatile long spin = static_cast<long>(i % 17);
      for (long s = 0; s < spin * 50; ++s) asm volatile("");
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<long>(n * (n - 1) / 2));
  }
}

}  // namespace
}  // namespace isex::util
