// RTL emission tests: structure of the generated Verilog, port counts
// against the candidate's operand counts, and well-formedness across random
// MLGP-generated custom instructions.
#include <gtest/gtest.h>

#include "isex/mlgp/mlgp.hpp"
#include "isex/rtl/verilog.hpp"
#include "test_util.hpp"

namespace isex::rtl {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

ise::Candidate sample_candidate(ir::Dfg& d) {
  const auto a = d.add(ir::Opcode::kInput);
  const auto b = d.add(ir::Opcode::kInput);
  const auto k = d.add(ir::Opcode::kConst);
  const auto sum = d.add(ir::Opcode::kAdd, {a, b});
  const auto sh = d.add(ir::Opcode::kShl, {sum, k});
  const auto x = d.add(ir::Opcode::kXor, {sh, a});
  d.mark_live_out(x);
  auto s = d.empty_set();
  s.set(static_cast<std::size_t>(sum));
  s.set(static_cast<std::size_t>(sh));
  s.set(static_cast<std::size_t>(x));
  return ise::make_candidate(d, s, lib(), 0, 1);
}

TEST(Verilog, ModuleStructure) {
  ir::Dfg d;
  const auto c = sample_candidate(d);
  const auto v = emit_verilog(d, c, "sample");
  EXPECT_NE(v.find("module ci_sample ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Two register inputs (a, b), one output, one localparam constant.
  EXPECT_NE(v.find("input  wire [31:0] in0"), std::string::npos);
  EXPECT_NE(v.find("input  wire [31:0] in1"), std::string::npos);
  EXPECT_EQ(v.find("input  wire [31:0] in2"), std::string::npos);
  EXPECT_NE(v.find("output wire [31:0] out0"), std::string::npos);
  EXPECT_NE(v.find("localparam"), std::string::npos);
  // The estimate header is present.
  EXPECT_NE(v.find("adder-equivalents"), std::string::npos);
  EXPECT_TRUE(verilog_well_formed(v));
}

TEST(Verilog, PortCountsMatchCandidate) {
  ir::Dfg d;
  const auto c = sample_candidate(d);
  const auto v = emit_verilog(d, c, "ports");
  int ins = 0, outs = 0;
  for (std::size_t p = v.find("input  wire"); p != std::string::npos;
       p = v.find("input  wire", p + 1))
    ++ins;
  for (std::size_t p = v.find("output wire"); p != std::string::npos;
       p = v.find("output wire", p + 1))
    ++outs;
  EXPECT_EQ(ins, c.num_inputs);
  EXPECT_EQ(outs, c.num_outputs);
}

class VerilogProperty : public ::testing::TestWithParam<int> {};

TEST_P(VerilogProperty, MlgpInstructionsEmitWellFormedModules) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 331 + 3);
  const ir::Dfg d = isex::testing::random_dfg(rng, 4, 50, 0.08);
  util::Rng algo(9);
  const auto cis = mlgp::generate_for_block(d, lib(), mlgp::MlgpOptions{}, algo);
  int idx = 0;
  for (const auto& c : cis) {
    const auto v = emit_verilog(d, c, "g" + std::to_string(idx++));
    EXPECT_TRUE(verilog_well_formed(v)) << v;
    // Port counts always match the candidate interface.
    int ins = 0;
    for (std::size_t p = v.find("input  wire"); p != std::string::npos;
         p = v.find("input  wire", p + 1))
      ++ins;
    EXPECT_EQ(ins, c.num_inputs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerilogProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace isex::rtl
