// util::Table — CSV escaping regression tests (RFC 4180) and round-trip of
// cells containing the delimiters the bench sweeps embed in labels.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "isex/util/table.hpp"

namespace isex::util {
namespace {

TEST(CsvEscapeTest, PlainCellsPassThrough) {
  EXPECT_EQ(csv_escape("crc32"), "crc32");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
}

TEST(CsvEscapeTest, DelimitersAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(csv_escape("cr\rlf"), "\"cr\rlf\"");
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
}

/// Minimal RFC-4180 parser for round-trip checks: one record per call.
std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(cur);
  return cells;
}

TEST(TableCsvTest, EmbeddedDelimitersRoundTrip) {
  Table t({"name", "note"});
  t.row().cell(std::string("a,b")).cell(std::string("say \"hi\""));
  t.row().cell(std::string("plain")).cell(std::string("x"));
  std::ostringstream os;
  t.print_csv(os);

  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(parse_csv_line(line), (std::vector<std::string>{"name", "note"}));
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(parse_csv_line(line),
            (std::vector<std::string>{"a,b", "say \"hi\""}));
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(parse_csv_line(line), (std::vector<std::string>{"plain", "x"}));
  EXPECT_FALSE(std::getline(in, line));
}

TEST(TableCsvTest, NumericCellsUnaffected) {
  Table t({"v"});
  t.row().cell(3.14159, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n3.14\n");
}

}  // namespace
}  // namespace isex::util
