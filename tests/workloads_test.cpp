// Workload substrate tests: kernel calibration against the published
// statistics (Table 5.1), registry behaviour, task-set construction, and
// energy/DVFS model invariants.
#include <gtest/gtest.h>

#include "isex/energy/dvfs.hpp"
#include "isex/workloads/tasks.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::workloads {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

double wcet_of(const ir::Program& p) {
  return p.wcet(ir::Program::sum_cost(
      [](const ir::Node& n) { return lib().sw_cycles(n); }));
}

int max_bb(const ir::Program& p) {
  int mx = 0;
  for (const auto& b : p.blocks()) mx = std::max(mx, b.dfg.num_operations());
  return mx;
}

TEST(Registry, AllBenchmarksBuildDeterministically) {
  for (const auto& name : benchmark_names()) {
    const auto p1 = make_benchmark(name);
    const auto p2 = make_benchmark(name);
    ASSERT_EQ(p1.num_blocks(), p2.num_blocks()) << name;
    EXPECT_DOUBLE_EQ(wcet_of(p1), wcet_of(p2)) << name;
    EXPECT_GT(wcet_of(p1), 0) << name;
    EXPECT_NE(benchmark_source(name), "?") << name;
  }
  EXPECT_THROW(make_benchmark("nonexistent"), std::invalid_argument);
}

// Calibration against Table 5.1: the giant-block and block-size *orderings*
// the Chapter 5 experiments depend on.
TEST(Calibration, BlockSizeOrderingMatchesTable51) {
  const int bb_3des = max_bb(make_benchmark("3des"));
  const int bb_sha = max_bb(make_benchmark("sha"));
  const int bb_lms = max_bb(make_benchmark("lms"));
  const int bb_g721 = max_bb(make_benchmark("g721decode"));
  EXPECT_GT(bb_3des, 2000);          // paper: 2745 — the IS-killer block
  EXPECT_GT(bb_sha, 200);            // paper: 487 — unrolled rounds
  EXPECT_LT(bb_lms, 40);             // paper: 29 — small DSP blocks
  EXPECT_LT(bb_g721, 100);           // paper: 80 — small codec blocks
  EXPECT_GT(bb_3des, bb_sha);
  EXPECT_GT(bb_sha, bb_g721);
}

TEST(Calibration, WcetMagnitudeOrdering) {
  // blowfish and 3des are the long-running kernels; jfdctint is tiny.
  const double w_blowfish = wcet_of(make_benchmark("blowfish"));
  const double w_3des = wcet_of(make_benchmark("3des"));
  const double w_jfdct = wcet_of(make_benchmark("jfdctint"));
  const double w_ndes = wcet_of(make_benchmark("ndes"));
  EXPECT_GT(w_blowfish, 1e8);
  EXPECT_GT(w_3des, 1e7);
  EXPECT_LT(w_jfdct, 1e4);
  EXPECT_LT(w_ndes, 1e5);
}

TEST(Tasks, CachedTaskHasValidCurve) {
  const auto& t = cached_task("sha");
  ASSERT_GE(t.configs.size(), 2u);
  EXPECT_DOUBLE_EQ(t.configs.front().area, 0);
  for (std::size_t i = 1; i < t.configs.size(); ++i) {
    EXPECT_GT(t.configs[i].area, t.configs[i - 1].area);
    EXPECT_LT(t.configs[i].cycles, t.configs[i - 1].cycles);
  }
  // Cached: same object back.
  EXPECT_EQ(&cached_task("sha"), &t);
}

TEST(Tasks, AllPaperTaskSetsBuild) {
  for (const auto* sets : {&ch3_tasksets(), &ch4_tasksets(), &ch5_tasksets()})
    for (const auto& names : *sets)
      for (const auto& n : names)
        EXPECT_NO_THROW(make_benchmark(n)) << n;
  auto ts = make_taskset(ch3_tasksets()[0], 1.05);
  EXPECT_NEAR(ts.sw_utilization(), 1.05, 1e-9);
  EXPECT_EQ(ts.size(), 4u);
}

// --- energy/DVFS -------------------------------------------------------------

TEST(Dvfs, OperatingPointsAscend) {
  const auto& pts = energy::tm5400_points();
  ASSERT_GE(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts.front().freq_mhz, 300);
  EXPECT_DOUBLE_EQ(pts.back().freq_mhz, 633);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].freq_mhz, pts[i - 1].freq_mhz);
    EXPECT_GT(pts[i].volt, pts[i - 1].volt);
  }
}

TEST(Dvfs, ScalingPicksLowestFeasiblePoint) {
  rt::TaskSet ts;
  ts.tasks.push_back(rt::Task{"A", 100, {{0, 45}}});  // U = 0.45
  const std::vector<int> a{0};
  const auto edf = energy::static_voltage_scaling(ts, a, true);
  ASSERT_TRUE(edf.schedulable);
  // 0.45 * 633/300 = 0.95 <= 1: the lowest point works under EDF.
  EXPECT_DOUBLE_EQ(edf.point.freq_mhz, 300);
  // Liu-Layland for n=1 is 1.0: RMS agrees here.
  const auto rms = energy::static_voltage_scaling(ts, a, false);
  EXPECT_DOUBLE_EQ(rms.point.freq_mhz, 300);
}

TEST(Dvfs, RmsBoundIsMoreConservative) {
  // Three tasks at U = 0.76: EDF can scale to 566 (0.76*633/566=0.85),
  // RMS bound for n=3 is 0.7798 so 566 MHz gives 0.85 > 0.7798 -> RMS must
  // stay higher.
  rt::TaskSet ts;
  for (int i = 0; i < 3; ++i)
    ts.tasks.push_back(rt::Task{"T", 300, {{0, 76}}});
  const std::vector<int> a{0, 0, 0};
  const auto edf = energy::static_voltage_scaling(ts, a, true);
  const auto rms = energy::static_voltage_scaling(ts, a, false);
  ASSERT_TRUE(edf.schedulable);
  ASSERT_TRUE(rms.schedulable);
  EXPECT_LT(edf.point.freq_mhz, rms.point.freq_mhz);
}

TEST(Dvfs, EnergyScalesWithVoltageSquared) {
  rt::TaskSet ts;
  ts.tasks.push_back(rt::Task{"A", 100, {{0, 50}}});
  const std::vector<int> a{0};
  const double h = 1000;
  const double e_low =
      energy::hyperperiod_energy(ts, a, {300, 1.2}, h);
  const double e_high =
      energy::hyperperiod_energy(ts, a, {633, 1.6}, h);
  EXPECT_NEAR(e_high / e_low, (1.6 * 1.6) / (1.2 * 1.2), 1e-12);
}

TEST(Dvfs, UnschedulableReportedHonestly) {
  rt::TaskSet ts;
  ts.tasks.push_back(rt::Task{"A", 100, {{0, 150}}});  // U = 1.5
  const auto r = energy::static_voltage_scaling(ts, {0}, true);
  EXPECT_FALSE(r.schedulable);
  EXPECT_DOUBLE_EQ(r.point.freq_mhz, 633);  // pinned at the top point
}

}  // namespace
}  // namespace isex::workloads
