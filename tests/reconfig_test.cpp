// Chapter 6 tests: the motivating example of Fig 6.4 reproduced exactly,
// solution feasibility properties, spatial-DP optimality, RCG construction
// from traces, and iterative/greedy vs exhaustive quality on small
// instances.
#include <gtest/gtest.h>

#include <functional>

#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/spatial.hpp"

namespace isex::reconfig {
namespace {

/// The running example of Fig 6.4: three loops, area budget 2048 AU,
/// rho = 15K cycles. Gains in K cycles (scaled by 1000 below).
Problem motivating() {
  Problem p;
  p.max_area = 2048;
  p.reconfig_cost = 15'000;
  p.area_grid = 1.0;
  p.loops = {
      {"loop1",
       {{0, 0}, {257, 111'000}, {301, 160'000}, {1612, 563'000}}},
      {"loop2",
       {{0, 0},
        {76, 230'000},
        {1041, 387'000},
        {1321, 426'000},
        {2004, 556'000}}},
      {"loop3", {{0, 0}, {967, 493'000}, {1249, 549'000}}},
  };
  // Control flow of Fig 6.4 as a trace whose reconfiguration-cost graph has
  // exactly the figure's edge weights: (1,2)=9, (1,3)=9, (2,3)=31.
  // Each repetition contributes A-B once, C-A once and B-C (1+2m) times.
  for (int rep = 0; rep < 9; ++rep) {
    const int m = rep < 2 ? 2 : 1;  // 2*5 + 7*3 = 31 B-C transitions
    p.trace.push_back(0);  // A (loop1)
    p.trace.push_back(1);  // B (loop2)
    for (int t = 0; t < m; ++t) {
      p.trace.push_back(2);  // C (loop3)
      p.trace.push_back(1);
    }
    p.trace.push_back(2);
    p.trace.push_back(0);
  }
  return p;
}

TEST(Motivating64, SingleConfigurationMatchesSolutionA) {
  const Problem p = motivating();
  // One configuration, all loops: knapsack under 2048.
  const auto v = spatial_select(p, {0, 1, 2}, p.max_area);
  // The thesis' solution (A) picks versions (3,2,2): 160+230+493 = 883K.
  // Under the figure's own version table that point is dominated: versions
  // (3,2,3) fit too (301+76+1249 = 1626 <= 2048) and gain 939K. The DP must
  // return the true knapsack optimum, so we assert the dominating solution
  // and, in particular, at least the thesis' 883K.
  EXPECT_EQ(v, (std::vector<int>{2, 1, 2}));
  Solution s;
  s.version = v;
  s.config = {0, 0, 0};
  EXPECT_TRUE(feasible(p, s));
  EXPECT_DOUBLE_EQ(raw_gain(p, s), 939'000);
  EXPECT_GE(raw_gain(p, s), 883'000);
  EXPECT_EQ(count_reconfigurations(p, s), 0);
}

TEST(Motivating64, OptimalTwoConfigSolutionC) {
  const Problem p = motivating();
  const auto ex = exhaustive_partition(p);
  ASSERT_TRUE(ex.completed);
  // Solution (C): {loop1} and {loop2, loop3}: gain 563+387+493 = 1443K,
  // 18 reconfigurations x 15K = 270K, net 1173K.
  EXPECT_DOUBLE_EQ(raw_gain(p, ex.solution), 1'443'000);
  EXPECT_EQ(count_reconfigurations(p, ex.solution), 18);
  EXPECT_DOUBLE_EQ(net_gain(p, ex.solution), 1'173'000);
  EXPECT_EQ(ex.solution.num_configs(), 2);
  // loop1 alone; loop2 and loop3 together.
  EXPECT_NE(ex.solution.config[0], ex.solution.config[1]);
  EXPECT_EQ(ex.solution.config[1], ex.solution.config[2]);
}

TEST(Motivating64, IterativeFindsTheOptimum) {
  const Problem p = motivating();
  util::Rng rng(3);
  const Solution s = iterative_partition(p, rng);
  EXPECT_TRUE(feasible(p, s));
  EXPECT_DOUBLE_EQ(net_gain(p, s), 1'173'000);
}

TEST(Motivating64, GreedyIsFeasibleButWeaker) {
  const Problem p = motivating();
  const Solution s = greedy_partition(p);
  EXPECT_TRUE(feasible(p, s));
  EXPECT_GT(net_gain(p, s), 0);
  EXPECT_LE(net_gain(p, s), 1'173'000 + 1e-9);
}

TEST(Rcg, EdgeWeightsFollowFilteredTrace) {
  Problem p;
  p.loops = {{"A", {{0, 0}, {1, 1}}},
             {"B", {{0, 0}, {1, 1}}},
             {"C", {{0, 0}, {1, 1}}}};
  p.trace = {0, 1, 2, 1, 2, 1, 0};  // A B C B C B A
  // All three in hardware: (A,B)=2, (B,C)=4, (A,C)=0 (Fig 6.6 top).
  auto g = build_rcg(p, {0, 1, 2}, {1, 1, 1});
  auto weight_of = [&](int u, int v) {
    for (const auto& [x, w] : g.neighbours(u))
      if (x == v) return w;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(weight_of(0, 1), 2);
  EXPECT_DOUBLE_EQ(weight_of(1, 2), 4);
  EXPECT_DOUBLE_EQ(weight_of(0, 2), 0);
  // B in software: (A,C)=2 (Fig 6.6 bottom).
  auto g2 = build_rcg(p, {0, 2}, {1, 1});
  for (const auto& [x, w] : g2.neighbours(0))
    if (x == 1) EXPECT_DOUBLE_EQ(w, 2);
}

TEST(Reconfigurations, SkipSoftwareLoopsAndInitialLoad) {
  Problem p;
  p.loops = {{"A", {{0, 0}, {1, 1}}},
             {"B", {{0, 0}, {1, 1}}},
             {"C", {{0, 0}, {1, 1}}}};
  p.trace = {0, 1, 0, 2, 0, 1};
  Solution s;
  s.version = {1, 1, 0};
  s.config = {0, 1, -1};
  // Filtered trace: A B A A B -> switches A|B, B|A, A|B = 3. C ignored;
  // first load not counted.
  EXPECT_EQ(count_reconfigurations(p, s), 3);
}

// Spatial DP vs brute force over all version combinations.
class SpatialProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpatialProperty, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 173 + 7);
  Problem p = synthetic_problem(rng.uniform_int(2, 5), rng);
  std::vector<int> ids(p.loops.size());
  std::iota(ids.begin(), ids.end(), 0);
  const double budget = rng.uniform_int(50, 300);
  const auto got = spatial_select(p, ids, budget);
  // Brute force.
  double best = -1;
  std::function<void(std::size_t, double, double)> rec =
      [&](std::size_t i, double area, double gain) {
        if (i == p.loops.size()) {
          best = std::max(best, gain);
          return;
        }
        for (const auto& v : p.loops[i].versions)
          if (v.area <= area + 1e-9) rec(i + 1, area - v.area, gain + v.gain);
      };
  rec(0, budget, 0);
  double got_gain = 0, got_area = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    got_gain += p.loops[i].versions[static_cast<std::size_t>(got[i])].gain;
    got_area += p.loops[i].versions[static_cast<std::size_t>(got[i])].area;
  }
  EXPECT_LE(got_area, budget + 1e-9);
  EXPECT_NEAR(got_gain, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialProperty, ::testing::Range(0, 15));

// Quality property: on small instances the iterative algorithm's solution is
// feasible and close to the exhaustive optimum; greedy never beats it by a
// large margin either way (Fig 6.8's ordering).
class QualityProperty : public ::testing::TestWithParam<int> {};

TEST_P(QualityProperty, IterativeNearOptimalOnSmallInstances) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 179 + 13);
  Problem p = synthetic_problem(rng.uniform_int(4, 8), rng);
  util::Rng algo_rng(7);
  const Solution it = iterative_partition(p, algo_rng);
  const Solution gr = greedy_partition(p);
  const auto ex = exhaustive_partition(p);
  ASSERT_TRUE(ex.completed);
  EXPECT_TRUE(feasible(p, it));
  EXPECT_TRUE(feasible(p, gr));
  EXPECT_TRUE(feasible(p, ex.solution));
  const double opt = net_gain(p, ex.solution);
  EXPECT_LE(net_gain(p, it), opt + 1e-6);
  EXPECT_LE(net_gain(p, gr), opt + 1e-6);
  EXPECT_GE(net_gain(p, it), 0.8 * opt) << "iterative strayed far from optimal";
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityProperty, ::testing::Range(0, 10));

TEST(Exhaustive, HonoursPartitionBudget) {
  util::Rng rng(5);
  Problem p = synthetic_problem(10, rng);
  const auto ex = exhaustive_partition(p, 100);
  EXPECT_FALSE(ex.completed);
  EXPECT_EQ(ex.visited, 100u);
  EXPECT_TRUE(feasible(p, ex.solution));
}

}  // namespace
}  // namespace isex::reconfig
