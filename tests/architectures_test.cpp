// Architecture-variant (Fig 2.2) and JPEG case-study tests.
#include <gtest/gtest.h>

#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/architectures.hpp"
#include "isex/reconfig/jpeg_case.hpp"

namespace isex::reconfig {
namespace {

TEST(TemporalOnly, OneLoopPerConfiguration) {
  util::Rng gen(3);
  const auto p = synthetic_problem(8, gen);
  const auto s = temporal_only_solution(p);
  EXPECT_TRUE(feasible(p, s));
  // Each hardware loop sits alone in its configuration.
  std::vector<int> count(static_cast<std::size_t>(s.num_configs()), 0);
  for (std::size_t l = 0; l < p.loops.size(); ++l)
    if (s.config[l] >= 0) ++count[static_cast<std::size_t>(s.config[l])];
  for (int c : count) EXPECT_EQ(c, 1);
  // And it picked each loop's best fabric-fitting version.
  for (std::size_t l = 0; l < p.loops.size(); ++l)
    if (s.version[l] > 0)
      EXPECT_LE(p.loops[l].versions[static_cast<std::size_t>(s.version[l])].area,
                p.max_area + 1e-9);
}

TEST(PartialModel, MatchesFullModelForSingleConfig) {
  util::Rng gen(5);
  const auto p = synthetic_problem(6, gen);
  Solution s = software_solution(p);
  // One configuration: no reconfigurations under either model.
  s.version[0] = 1;
  s.config[0] = 0;
  EXPECT_DOUBLE_EQ(net_gain(p, s), partial_net_gain(p, s, 123.0));
}

TEST(PartialModel, ChargesIncomingConfigArea) {
  Problem p;
  p.max_area = 100;
  p.reconfig_cost = 0;  // unused by the partial model
  p.loops = {{"A", {{0, 0}, {10, 100}}}, {"B", {{0, 0}, {40, 100}}}};
  p.trace = {0, 1, 0};
  Solution s;
  s.version = {1, 1};
  s.config = {0, 1};
  // Switches: ->B (area 40), ->A (area 10); the initial load is free.
  EXPECT_DOUBLE_EQ(partial_net_gain(p, s, 2.0), 200 - 2.0 * (40 + 10));
}

TEST(PartialModel, OptimizerNotWorseThanFullReloadSolution) {
  for (int n : {6, 10, 14}) {
    util::Rng gen(static_cast<std::uint64_t>(n));
    const auto p = synthetic_problem(n, gen);
    const double rate = p.reconfig_cost / p.max_area;
    util::Rng r1(7), r2(7);
    const auto full = iterative_partition(p, r1);
    const auto partial = iterative_partition_partial(p, rate, r2);
    EXPECT_TRUE(feasible(p, partial));
    EXPECT_GE(partial_net_gain(p, partial, rate) + 1e-6,
              partial_net_gain(p, full, rate))
        << "n=" << n;
  }
}

TEST(JpegCase, StructureAndDeterminism) {
  const auto p1 = jpeg_case_study(20'000, 120);
  const auto p2 = jpeg_case_study(20'000, 120);
  ASSERT_EQ(p1.loops.size(), 8u);
  EXPECT_EQ(p1.trace.size(), p2.trace.size());
  for (std::size_t l = 0; l < p1.loops.size(); ++l) {
    ASSERT_EQ(p1.loops[l].versions.size(), p2.loops[l].versions.size());
    // Version 0 is software; gains strictly increase along the curve.
    EXPECT_DOUBLE_EQ(p1.loops[l].versions[0].gain, 0);
    EXPECT_DOUBLE_EQ(p1.loops[l].versions[0].area, 0);
    for (std::size_t j = 1; j < p1.loops[l].versions.size(); ++j) {
      EXPECT_GT(p1.loops[l].versions[j].gain,
                p1.loops[l].versions[j - 1].gain);
      EXPECT_GT(p1.loops[l].versions[j].area,
                p1.loops[l].versions[j - 1].area);
      EXPECT_DOUBLE_EQ(p1.loops[l].versions[j].gain,
                       p2.loops[l].versions[j].gain);
    }
  }
  // Trace covers all loops and alternates encode/decode phases.
  std::vector<bool> seen(p1.loops.size(), false);
  for (int l : p1.trace) seen[static_cast<std::size_t>(l)] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(JpegCase, ReconfigurationBeatsStaticOnTightFabric) {
  const auto p = jpeg_case_study(5'000, 60);
  std::vector<int> all(p.loops.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  util::Rng rng(1);
  const auto iter = iterative_partition(p, rng);
  // Static: single configuration.
  const auto ex = exhaustive_partition(p);
  EXPECT_GE(net_gain(p, iter), 0.95 * net_gain(p, ex.solution));
  EXPECT_GE(iter.num_configs(), 2);
}

}  // namespace
}  // namespace isex::reconfig
