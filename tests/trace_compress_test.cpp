// Loop-trace grammar compression tests: lossless round trip, compression on
// repetitive traces, and expansion-free reconfiguration counting.
#include <gtest/gtest.h>

#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/trace_compress.hpp"

namespace isex::reconfig {
namespace {

TEST(TraceCompress, RoundTripSimple) {
  const std::vector<int> trace{0, 1, 2, 0, 1, 2, 0, 1, 2, 3};
  const auto g = compress_trace(trace);
  EXPECT_EQ(g.expand(), trace);
  EXPECT_LT(g.size(), trace.size());
}

TEST(TraceCompress, EdgeCases) {
  EXPECT_TRUE(compress_trace({}).expand().empty());
  EXPECT_EQ(compress_trace({5}).expand(), std::vector<int>{5});
  EXPECT_EQ(compress_trace({1, 1, 1, 1}).expand(),
            (std::vector<int>{1, 1, 1, 1}));
  // All-distinct traces cannot compress but must round-trip.
  const std::vector<int> distinct{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(compress_trace(distinct).expand(), distinct);
}

TEST(TraceCompress, RepetitiveTraceCompressesWell) {
  // A JPEG-like phase pattern repeated 200 times: the grammar should be a
  // tiny fraction of the trace.
  std::vector<int> trace;
  for (int rep = 0; rep < 200; ++rep)
    for (int l : {0, 1, 1, 2, 3}) trace.push_back(l);
  const auto g = compress_trace(trace);
  EXPECT_EQ(g.expand(), trace);
  EXPECT_LT(g.size(), trace.size() / 10);
}

class CompressProperty : public ::testing::TestWithParam<int> {};

TEST_P(CompressProperty, RoundTripOnSyntheticTraces) {
  util::Rng gen(static_cast<std::uint64_t>(GetParam()) * 503 + 7);
  const auto p = synthetic_problem(gen.uniform_int(4, 15), gen);
  const auto g = compress_trace(p.trace);
  EXPECT_EQ(g.expand(), p.trace);
}

TEST_P(CompressProperty, GrammarCountMatchesFlatCount) {
  util::Rng gen(static_cast<std::uint64_t>(GetParam()) * 509 + 13);
  const auto p = synthetic_problem(gen.uniform_int(4, 15), gen);
  const auto g = compress_trace(p.trace);
  util::Rng rng(5);
  for (const auto& s : {iterative_partition(p, rng), greedy_partition(p),
                        software_solution(p)}) {
    EXPECT_EQ(count_reconfigurations(g, p, s), count_reconfigurations(p, s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressProperty, ::testing::Range(0, 15));

TEST(TraceCompress, GrammarCountHandlesSoftwareLoops) {
  Problem p;
  p.loops = {{"A", {{0, 0}, {1, 1}}},
             {"B", {{0, 0}, {1, 1}}},
             {"C", {{0, 0}, {1, 1}}}};
  p.trace = {0, 1, 0, 2, 0, 1, 0, 2};  // A B A C A B A C
  Solution s;
  s.version = {1, 1, 0};
  s.config = {0, 1, -1};  // C in software
  const auto g = compress_trace(p.trace);
  // Filtered: A B A A B A -> A|B, B|A, A|B, B|A = 4.
  EXPECT_EQ(count_reconfigurations(g, p, s), 4);
  EXPECT_EQ(count_reconfigurations(p, s), 4);
}

}  // namespace
}  // namespace isex::reconfig
