#include "isex/ir/dfg.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::ir {
namespace {

// Builds the example DFG of Fig 5.1-style discussions:
//   in0 in1
//    \  /
//     add(2)   in0
//       \      /
//        mul(3)
//        /    \
//    shl(4)   add(5)   -> both live-out
Dfg small_chain() {
  Dfg d;
  const auto i0 = d.add(Opcode::kInput);
  const auto i1 = d.add(Opcode::kInput);
  const auto a = d.add(Opcode::kAdd, {i0, i1});
  const auto m = d.add(Opcode::kMul, {a, i0});
  const auto s = d.add(Opcode::kShl, {m, i1});
  const auto b = d.add(Opcode::kAdd, {m, i1});
  d.mark_live_out(s);
  d.mark_live_out(b);
  return d;
}

TEST(Dfg, OperandValidation) {
  Dfg d;
  EXPECT_THROW(d.add(Opcode::kAdd, {0, 1}), std::invalid_argument);
  const auto i = d.add(Opcode::kInput);
  EXPECT_NO_THROW(d.add(Opcode::kNot, {i}));
  const auto st = d.add(Opcode::kStore, {i, i});
  // Stores produce no value; using one as an operand is rejected.
  EXPECT_THROW(d.add(Opcode::kAdd, {st, i}), std::invalid_argument);
}

TEST(Dfg, ConsumersMirrorOperands) {
  Dfg d = small_chain();
  EXPECT_EQ(d.node(2).consumers.size(), 1u);   // add -> mul
  EXPECT_EQ(d.node(3).consumers.size(), 2u);   // mul -> shl, add
  EXPECT_EQ(d.node(0).consumers.size(), 2u);   // in0 -> add, mul
}

TEST(Dfg, InputCountIgnoresConstants) {
  Dfg d;
  const auto i0 = d.add(Opcode::kInput);
  const auto c = d.add(Opcode::kConst);
  const auto a = d.add(Opcode::kAdd, {i0, c});
  const auto b = d.add(Opcode::kShl, {a, c});
  d.mark_live_out(b);
  auto s = d.empty_set();
  s.set(static_cast<std::size_t>(a));
  s.set(static_cast<std::size_t>(b));
  EXPECT_EQ(d.input_count(s), 1);   // only in0; the constant is hardwired
  EXPECT_EQ(d.output_count(s), 1);  // b
}

TEST(Dfg, InputCountDedupesSharedProducer) {
  Dfg d = small_chain();
  auto s = d.empty_set();
  s.set(2);  // add(in0,in1)
  s.set(3);  // mul(add,in0)
  // Inputs: in0 (used by both), in1 -> 2 distinct.
  EXPECT_EQ(d.input_count(s), 2);
}

TEST(Dfg, OutputCountCountsEscapesAndLiveOuts) {
  Dfg d = small_chain();
  auto s = d.empty_set();
  s.set(2);
  s.set(3);
  EXPECT_EQ(d.output_count(s), 1);  // mul feeds shl+add outside; add(2) internal
  s.set(4);
  s.set(5);
  EXPECT_EQ(d.output_count(s), 2);  // the two live-outs
}

TEST(Dfg, ConvexityDetectsReentrantPath) {
  Dfg d = small_chain();
  auto s = d.empty_set();
  s.set(2);  // add
  s.set(4);  // shl — path add -> mul -> shl passes outside through mul
  EXPECT_FALSE(d.is_convex(s));
  s.set(3);  // include mul: now convex
  EXPECT_TRUE(d.is_convex(s));
}

TEST(Dfg, AncestorsAndDescendants) {
  Dfg d = small_chain();
  EXPECT_TRUE(d.ancestors(4).test(2));
  EXPECT_TRUE(d.ancestors(4).test(0));
  EXPECT_FALSE(d.ancestors(4).test(5));
  EXPECT_TRUE(d.descendants(2).test(4));
  EXPECT_TRUE(d.descendants(2).test(5));
  EXPECT_FALSE(d.descendants(4).any());
}

TEST(Dfg, RegionsSplitAtInvalidNodes) {
  Dfg d;
  const auto i0 = d.add(Opcode::kInput);
  const auto a = d.add(Opcode::kAdd, {i0, i0});
  const auto ld = d.add(Opcode::kLoad, {a});
  const auto b = d.add(Opcode::kXor, {ld, i0});
  const auto c = d.add(Opcode::kOr, {b, ld});
  d.mark_live_out(c);
  const auto regions = d.regions();
  ASSERT_EQ(regions.size(), 2u);
  // One region is {a}; the other {b, c}.
  std::size_t small = regions[0].count() == 1 ? 0 : 1;
  EXPECT_TRUE(regions[small].test(static_cast<std::size_t>(a)));
  EXPECT_TRUE(regions[1 - small].test(static_cast<std::size_t>(b)));
  EXPECT_TRUE(regions[1 - small].test(static_cast<std::size_t>(c)));
}

TEST(Dfg, NumOperationsExcludesLeaves) {
  Dfg d = small_chain();
  EXPECT_EQ(d.num_nodes(), 6);
  EXPECT_EQ(d.num_operations(), 4);
}

// Property: regions partition exactly the valid non-const nodes, each region
// is connected, and no edge joins two different regions through valid nodes.
class DfgRegionProperty : public ::testing::TestWithParam<int> {};

TEST_P(DfgRegionProperty, RegionsPartitionValidNodes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  const Dfg d = isex::testing::random_dfg(rng, 4, 60, 0.15);
  const auto regions = d.regions();
  auto total = d.empty_set();
  for (const auto& r : regions) {
    EXPECT_FALSE(r.intersects(total)) << "regions overlap";
    total |= r;
  }
  for (int i = 0; i < d.num_nodes(); ++i) {
    const bool in_region = total.test(static_cast<std::size_t>(i));
    const bool expected = is_valid_for_ci(d.node(i).op) &&
                          d.node(i).op != Opcode::kConst;
    EXPECT_EQ(in_region, expected) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfgRegionProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace isex::ir
