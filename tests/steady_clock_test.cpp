// Regression guard: every timing source in the tree must be monotonic.
//
// The audit behind this file found a single clock in the codebase —
// obs::clock_ns(), already std::chrono::steady_clock — read by Budget
// deadlines, Stopwatch, trace timestamps and the serve latency fields. These
// tests pin that invariant (plus a compile-time static_assert in trace.cpp)
// so a future "just use system_clock" refactor fails loudly: a wall-clock
// step (NTP, DST, VM migration) must shift timestamps, never expire budgets
// or fire deadlines early.
#include <gtest/gtest.h>

#include "isex/obs/trace.hpp"
#include "isex/robust/budget.hpp"

namespace isex {
namespace {

TEST(SteadyClock, ClockIsSteady) {
  EXPECT_TRUE(obs::clock_is_steady());
}

TEST(SteadyClock, ClockNsIsMonotonicNonDecreasing) {
  std::int64_t prev = obs::clock_ns();
  for (int i = 0; i < 100000; ++i) {
    const std::int64_t now = obs::clock_ns();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST(SteadyClock, BudgetDeadlineExpiresByElapsedTimeOnly) {
  robust::Budget b;
  b.set_time_budget(0.02);
  // Spin on charge() until the deadline trips; the budget must observe it
  // within one stride of the elapsed wall time, and the report must agree.
  long charges = 0;
  while (!b.charge() && charges < 500'000'000) ++charges;
  const robust::BudgetReport rep = b.report();
  EXPECT_TRUE(rep.time_exhausted);
  EXPECT_FALSE(rep.nodes_exhausted);
  // The clock that fired is the same steady clock elapsed_seconds reads.
  EXPECT_GE(rep.elapsed_seconds, 0.02 - 1e-4);
  EXPECT_EQ(rep.reason(), "time");
}

TEST(SteadyClock, UnlimitedBudgetNeverExpiresFromTheStrideCheck) {
  // The stride time-check now runs even without a deadline (it also polls
  // global cancellation); it must never latch a timeout on its own.
  robust::clear_global_cancel();
  robust::Budget b;
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(b.charge());
  EXPECT_FALSE(b.report().exhausted());
}

TEST(SteadyClock, GlobalCancelStopsAnyBudgetWithinOneStride) {
  robust::clear_global_cancel();
  robust::Budget limitless;
  robust::Budget timed;
  timed.set_time_budget(3600.0);
  robust::request_global_cancel();
  EXPECT_TRUE(robust::global_cancel_requested());
  // Within one stride of charges every live budget observes the cancel.
  bool stopped = false;
  for (long i = 0; i < robust::Budget::kTimeCheckStride && !stopped; ++i)
    stopped = limitless.charge();
  EXPECT_TRUE(stopped);
  EXPECT_TRUE(timed.exhausted());  // the poll path observes it immediately
  const robust::BudgetReport rep = limitless.report();
  EXPECT_TRUE(rep.cancelled);
  EXPECT_TRUE(rep.exhausted());
  EXPECT_EQ(rep.reason(), "cancel");
  robust::clear_global_cancel();
  // Cancellation is latched per budget: a fresh budget runs normally again.
  robust::Budget fresh;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(fresh.charge());
}

}  // namespace
}  // namespace isex
