// End-to-end integration tests: the full Chapter 3 pipeline from benchmark
// kernels to a schedulable customized system, cross-validated by the
// cycle-accurate scheduler simulator; plus cross-chapter consistency checks
// (the Ch.4 exact utilization front must agree with the Ch.3 EDF DP).
#include <gtest/gtest.h>

#include <cmath>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/pareto/inter.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/workloads/tasks.hpp"

namespace isex {
namespace {

std::vector<rt::SimTask> to_sim(const rt::TaskSet& ts,
                                const std::vector<int>& assignment) {
  std::vector<rt::SimTask> out;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& cfg =
        ts.tasks[i].configs[static_cast<std::size_t>(assignment[i])];
    out.push_back({static_cast<std::int64_t>(std::llround(cfg.cycles)),
                   static_cast<std::int64_t>(std::llround(ts.tasks[i].period))});
  }
  return out;
}

TEST(EndToEnd, CustomizationMakesTaskSetSchedulableAndSimulationAgrees) {
  auto ts = workloads::make_taskset({"crc32", "ndes", "jfdctint", "lms"},
                                    1.10);
  ts.sort_by_period();
  EXPECT_GT(ts.sw_utilization(), 1.0);

  // Software-only simulation must miss deadlines.
  {
    rt::SimOptions so;
    so.policy = rt::Policy::kEdf;
    so.horizon = 5'000'000;
    const auto miss = rt::simulate(to_sim(ts, std::vector<int>(ts.size(), 0)), so);
    EXPECT_FALSE(miss.all_met);
  }

  const auto edf = customize::select_edf(ts, 0.6 * ts.max_area());
  ASSERT_TRUE(edf.schedulable);

  // The customized system meets every deadline in simulation.
  rt::SimOptions so;
  so.policy = rt::Policy::kEdf;
  so.horizon = 5'000'000;
  const auto sim = rt::simulate(to_sim(ts, edf.assignment), so);
  EXPECT_TRUE(sim.all_met) << "simulation contradicts the analysis";
}

TEST(EndToEnd, RmsSelectionSurvivesSimulation) {
  auto ts = workloads::make_taskset({"crc32", "ndes", "jfdctint", "lms"},
                                    1.0);
  ts.sort_by_period();
  const auto rms = customize::select_rms(ts, 0.6 * ts.max_area());
  ASSERT_TRUE(rms.found_feasible);
  rt::SimOptions so;
  so.policy = rt::Policy::kRms;
  so.horizon = 5'000'000;
  const auto sim = rt::simulate(to_sim(ts, rms.assignment), so);
  EXPECT_TRUE(sim.all_met);
}

TEST(EndToEnd, EdfDpAgreesWithExactUtilizationFront) {
  // Chapter 3's DP at budget A and Chapter 4's exact utilization-area front
  // describe the same design space; the front evaluated at A must match the
  // DP's minimum utilization (up to the DP's area quantization).
  auto ts = workloads::make_taskset({"ndes", "jfdctint", "lms"}, 1.0);
  std::vector<pareto::TaskMenu> menus;
  for (const auto& t : ts.tasks) {
    pareto::TaskMenu m;
    m.period = t.period;
    for (const auto& cfg : t.configs)
      m.configs.push_back(pareto::Item{
          static_cast<int>(std::ceil(cfg.area - 1e-9)), cfg.cycles});
    menus.push_back(std::move(m));
  }
  const auto front = pareto::exact_utilization_front(menus);
  for (double budget : {0.0, 30.0, 80.0, 200.0}) {
    const auto dp = customize::select_edf(ts, budget, customize::EdfOptions{1.0});
    // Best front point within the budget.
    double front_u = front.front().value;
    for (const auto& pt : front)
      if (pt.cost <= budget + 1e-9) front_u = pt.value;
    // The front uses ceil-quantized costs too, so the values line up to the
    // rounding slack of one grid unit per task.
    EXPECT_NEAR(dp.utilization, front_u, 0.02) << "budget " << budget;
  }
}

TEST(EndToEnd, Utilization08TaskSetsScheduleUnderBothPolicies) {
  // The Fig 3.3 U0=0.8 claim: every Chapter 3 task set is schedulable under
  // both policies with identical (optimal-utilization) selections.
  for (const auto& names : workloads::ch3_tasksets()) {
    auto ts = workloads::make_taskset(names, 0.8);
    ts.sort_by_period();
    const double budget = 0.5 * ts.max_area();
    const auto edf = customize::select_edf(ts, budget);
    const auto rms = customize::select_rms(ts, budget);
    EXPECT_TRUE(edf.schedulable);
    EXPECT_TRUE(rms.schedulable);
    EXPECT_NEAR(edf.utilization, rms.utilization, 0.02);
  }
}

}  // namespace
}  // namespace isex
