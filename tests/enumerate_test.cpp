#include "isex/ise/enumerate.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_util.hpp"

namespace isex::ise {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

// Property suite over random DFGs: every emitted candidate is legal, and on
// small graphs the connected enumerator finds every *connected* legal subgraph.
class EnumerateProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnumerateProperty, AllCandidatesAreLegal) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 3);
  const ir::Dfg d = isex::testing::random_dfg(rng, 3, 40, 0.1);
  EnumOptions opts;
  const auto cands = enumerate_candidates(d, lib(), opts);
  for (const auto& c : cands) {
    EXPECT_TRUE(is_legal(d, c.nodes, opts.constraints));
    EXPECT_EQ(c.num_inputs, d.input_count(c.nodes));
    EXPECT_EQ(c.num_outputs, d.output_count(c.nodes));
    EXPECT_GE(c.nodes.count(), 2u);
  }
}

TEST_P(EnumerateProperty, NoDuplicates) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 5);
  const ir::Dfg d = isex::testing::random_dfg(rng, 3, 30, 0.1);
  const auto cands = enumerate_candidates(d, lib(), EnumOptions{});
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  for (const auto& c : cands)
    EXPECT_TRUE(seen.insert(c.nodes).second) << "duplicate candidate";
}

TEST_P(EnumerateProperty, FindsEveryConnectedLegalSubgraphOnSmallGraphs) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 29 + 11);
  const ir::Dfg d = isex::testing::random_dfg(rng, 2, 10, 0.1);
  EnumOptions opts;
  const auto cands = enumerate_connected(d, lib(), opts);
  std::unordered_set<util::Bitset, util::BitsetHash> emitted;
  for (const auto& c : cands) emitted.insert(c.nodes);

  // Ground truth: all legal subsets, filtered to connected ones.
  for (const auto& s : isex::testing::brute_force_legal(d, opts.constraints)) {
    // Connectivity check (undirected) over s.
    const auto ids = s.to_vector();
    util::Bitset reached = d.empty_set();
    std::vector<int> stack{ids[0]};
    reached.set(static_cast<std::size_t>(ids[0]));
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      auto visit = [&](ir::NodeId u) {
        if (s.test(static_cast<std::size_t>(u)) &&
            !reached.test(static_cast<std::size_t>(u))) {
          reached.set(static_cast<std::size_t>(u));
          stack.push_back(u);
        }
      };
      for (auto o : d.node(v).operands) visit(o);
      for (auto c : d.node(v).consumers) visit(c);
    }
    if (reached != s) continue;  // disconnected; growth enumerator skips these
    EXPECT_TRUE(emitted.count(s)) << "missing connected legal subgraph of size "
                                  << s.count();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumerateProperty, ::testing::Range(0, 15));

TEST(MaximalMiso, SingleOutputByConstruction) {
  util::Rng rng(99);
  const ir::Dfg d = isex::testing::random_dfg(rng, 3, 50, 0.1);
  for (const auto& m : maximal_misos(d, lib(), Constraints{})) {
    EXPECT_EQ(m.num_outputs, 1);
    EXPECT_TRUE(d.is_convex(m.nodes));
    EXPECT_LE(m.num_inputs, 4);
  }
}

TEST(MaximalMiso, GrowsChainCompletely) {
  // a -> b -> c chain collapses into one MaxMISO rooted at c.
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  const auto a = d.add(ir::Opcode::kAdd, {i, i});
  const auto b = d.add(ir::Opcode::kXor, {a, i});
  const auto c = d.add(ir::Opcode::kShl, {b, i});
  d.mark_live_out(c);
  const auto misos = maximal_misos(d, lib(), Constraints{});
  bool found_full = false;
  for (const auto& m : misos)
    if (m.nodes.count() == 3) {
      found_full = true;
      EXPECT_TRUE(m.nodes.test(static_cast<std::size_t>(a)));
      EXPECT_TRUE(m.nodes.test(static_cast<std::size_t>(b)));
      EXPECT_TRUE(m.nodes.test(static_cast<std::size_t>(c)));
    }
  EXPECT_TRUE(found_full);
}

TEST(IsoHash, IsomorphicShapesCollide) {
  // Two separate (a+b)*c datapaths in one block.
  ir::Dfg d;
  const auto i0 = d.add(ir::Opcode::kInput);
  const auto i1 = d.add(ir::Opcode::kInput);
  const auto i2 = d.add(ir::Opcode::kInput);
  const auto a1 = d.add(ir::Opcode::kAdd, {i0, i1});
  const auto m1 = d.add(ir::Opcode::kMul, {a1, i2});
  const auto a2 = d.add(ir::Opcode::kAdd, {i1, i2});
  const auto m2 = d.add(ir::Opcode::kMul, {a2, i0});
  d.mark_live_out(m1);
  d.mark_live_out(m2);
  auto s1 = d.empty_set();
  s1.set(static_cast<std::size_t>(a1));
  s1.set(static_cast<std::size_t>(m1));
  auto s2 = d.empty_set();
  s2.set(static_cast<std::size_t>(a2));
  s2.set(static_cast<std::size_t>(m2));
  EXPECT_EQ(iso_hash(d, s1), iso_hash(d, s2));

  // A different shape (add feeding add) must not collide.
  auto s3 = d.empty_set();
  s3.set(static_cast<std::size_t>(a1));
  s3.set(static_cast<std::size_t>(a2));
  EXPECT_NE(iso_hash(d, s1), iso_hash(d, s3));
}

TEST(Estimate, ChainedAddsFitOneCycle) {
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  auto prev = d.add(ir::Opcode::kAdd, {i, i});
  auto s = d.empty_set();
  s.set(static_cast<std::size_t>(prev));
  for (int k = 0; k < 3; ++k) {
    prev = d.add(ir::Opcode::kAdd, {prev, i});
    s.set(static_cast<std::size_t>(prev));
  }
  d.mark_live_out(prev);
  const auto e = hw::estimate(d, s, lib());
  // 4 chained 2ns adders = 8ns < 8.33ns clock: 1 hardware cycle, 4 sw cycles.
  EXPECT_EQ(e.hw_cycles, 1);
  EXPECT_DOUBLE_EQ(e.sw_cycles, 4);
  EXPECT_DOUBLE_EQ(e.gain_per_exec, 3);
  EXPECT_NEAR(e.area, 4.0, 1e-9);
}

}  // namespace
}  // namespace isex::ise
