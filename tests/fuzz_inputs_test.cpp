// Seeded-random fuzzing of the CLI surface (no libFuzzer dependency): feed
// hundreds of random and mutated argument vectors through isex::cli::run
// in-process and assert the driver's contract — it never crashes, never
// throws, and always returns one of the documented exit codes 0..3.
//
// The token pool mixes valid commands, flags, benchmark names, numbers, and
// garbage (empty strings, unicode, near-numeric junk, path traversal). Every
// invocation carries a starvation budget so that even an accidentally valid
// heavy command terminates quickly.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "isex/cli/driver.hpp"
#include "isex/util/rng.hpp"

namespace isex::cli {
namespace {

int run_quiet(const std::vector<std::string>& args) {
  ::fflush(stdout);
  ::fflush(stderr);
  const int out = ::dup(1), err = ::dup(2);
  const int null = ::open("/dev/null", O_WRONLY);
  ::dup2(null, 1);
  ::dup2(null, 2);
  const int rc = run(args);
  ::fflush(stdout);
  ::fflush(stderr);
  ::dup2(out, 1);
  ::dup2(err, 2);
  ::close(out);
  ::close(err);
  ::close(null);
  return rc;
}

const std::vector<std::string>& token_pool() {
  static const std::vector<std::string> pool = {
      // commands
      "list", "curve", "select", "pareto", "iterative", "reconfig", "inject",
      "margin", "trace",
      // flags
      "--csv", "--metrics", "--metrics=/tmp/isex_fuzz_metrics.json",
      "--strict", "--time-budget", "--node-budget", "--mem-budget", "-o",
      "/tmp/isex_fuzz_out.json", "--u0", "--policy", "--budget-fraction",
      // plausible values
      "edf", "rms", "soft", "firm", "mode", "1.08", "0.5", "1.25", "3", "7",
      "50ms", "2s", "10K", "1M",
      // cheap benchmarks (the heavyweights would dominate runtime)
      "crc32", "sha",
      // garbage
      "", "-", "--", "benchmark;rm -rf", "../../etc/passwd", "NaN", "inf",
      "-inf", "1e999", "0x41", "9999999999999999999999", "-1", "\xff\xfe",
      "select", "müllwörter", "--time-budget=never", "--node-budget=-5",
  };
  return pool;
}

std::vector<std::string> random_argv(util::Rng& rng) {
  const auto& pool = token_pool();
  std::vector<std::string> args;
  const int n = rng.uniform_int(0, 7);
  for (int i = 0; i < n; ++i)
    args.push_back(pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(pool.size()) - 1))]);
  // A starvation budget keeps accidentally-valid heavy commands fast, and is
  // itself part of the fuzzed surface.
  if (rng.chance(0.8)) {
    args.push_back("--node-budget");
    args.push_back("2000");
  }
  if (rng.chance(0.5)) args.push_back("--time-budget=100ms");
  return args;
}

/// Random single-token mutation of a valid command line.
std::vector<std::string> mutated_argv(util::Rng& rng) {
  static const std::vector<std::vector<std::string>> seeds = {
      {"list"},
      {"curve", "crc32", "--csv"},
      {"select", "1.08", "0.5", "edf", "crc32", "sha"},
      {"select", "1.08", "0.5", "rms", "crc32", "sha"},
      {"reconfig", "5", "7"},
      {"margin", "1.05", "edf", "crc32", "sha"},
      {"--node-budget", "100", "--strict", "select", "1.08", "0.5", "edf",
       "crc32", "sha"},
  };
  auto args = seeds[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(seeds.size()) - 1))];
  const auto& pool = token_pool();
  const int mutations = rng.uniform_int(1, 2);
  for (int m = 0; m < mutations; ++m) {
    const auto pos =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(args.size()) - 1));
    switch (rng.uniform_int(0, 2)) {
      case 0:  // replace
        args[pos] = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
        break;
      case 1:  // delete
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
      default:  // duplicate
        args.insert(args.begin() + static_cast<std::ptrdiff_t>(pos),
                    args[pos]);
        break;
    }
    if (args.empty()) break;
  }
  return args;
}

TEST(FuzzInputs, RandomArgvNeverCrashesAndExitsInRange) {
  util::Rng rng(0xF0220001u);
  for (int i = 0; i < 400; ++i) {
    const auto args = random_argv(rng);
    int rc = -1;
    ASSERT_NO_THROW(rc = run_quiet(args)) << "iteration " << i;
    EXPECT_GE(rc, 0) << "iteration " << i;
    EXPECT_LE(rc, 3) << "iteration " << i;
  }
}

TEST(FuzzInputs, MutatedValidCommandsNeverCrash) {
  util::Rng rng(0xF0220002u);
  for (int i = 0; i < 200; ++i) {
    const auto args = mutated_argv(rng);
    int rc = -1;
    ASSERT_NO_THROW(rc = run_quiet(args)) << "iteration " << i;
    EXPECT_GE(rc, 0) << "iteration " << i;
    EXPECT_LE(rc, 3) << "iteration " << i;
  }
}

TEST(FuzzInputs, DriverIsReentrant) {
  // Repeated in-process invocations share the benchmark cache and the obs
  // registry; exit codes must stay deterministic.
  const std::vector<std::string> args = {"select", "1.08", "0.5",
                                         "edf",    "crc32", "sha"};
  const int first = run_quiet(args);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_quiet(args), first);
}

}  // namespace
}  // namespace isex::cli
