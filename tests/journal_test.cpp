// isex::obs::Journal — the flight recorder: record layout and wraparound,
// the seqlock's no-torn-records guarantee under concurrent writers, the
// binary dump round trip, the async-signal-safe crash dump (forked child),
// rid-based response reconstruction through the serve path, stats/introspect
// JSON parse-back, and the journal-cannot-change-responses guard.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "isex/obs/journal.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/serve/json.hpp"
#include "isex/serve/server.hpp"

namespace isex {
namespace {

using obs::Journal;
using obs::JournalKind;
using obs::JournalPhase;
using obs::JournalRecord;

std::string tmp_path(const char* stem) {
  return "/tmp/isex_journal_test_" + std::string(stem) + "_" +
         std::to_string(::getpid()) + ".bin";
}

std::string inline_select(const std::string& id) {
  return "{\"id\":\"" + id +
         "\",\"cmd\":\"select\",\"area_budget\":3.0"
         ",\"tasks\":[{\"name\":\"t0\",\"period\":100,\"configs\":"
         "[[0,50],[2,25]]},{\"name\":\"t1\",\"period\":200,\"configs\":"
         "[[0,80],[1,60],[3,40]]}],\"node_budget\":50000}";
}

TEST(Journal, CapacityRoundsUpAndClears) {
  auto& j = Journal::global();
  j.set_capacity(100);
  EXPECT_EQ(j.capacity(), 128u);
  EXPECT_EQ(j.head(), 0u);
  EXPECT_GT(j.record(JournalKind::kMark, JournalPhase::kNone), 0u);
  EXPECT_EQ(j.head(), 1u);
  j.set_capacity(64);
  EXPECT_EQ(j.head(), 0u);
}

TEST(Journal, DisabledRecordsNothing) {
  auto& j = Journal::global();
  j.set_capacity(64);
  j.set_enabled(false);
  EXPECT_EQ(j.record(JournalKind::kMark, JournalPhase::kNone), 0u);
  j.set_enabled(true);
  EXPECT_EQ(j.head(), 0u);
  EXPECT_TRUE(j.snapshot().empty());
}

TEST(Journal, ScopeAttributesAndNests) {
  auto& j = Journal::global();
  j.set_capacity(64);
  EXPECT_EQ(obs::current_request_id(), 0u);
  {
    obs::JournalScope outer(7);
    EXPECT_EQ(obs::current_request_id(), 7u);
    j.record(JournalKind::kMark, JournalPhase::kNone, 0, 1, 0);
    {
      obs::JournalScope inner(9);
      j.record(JournalKind::kMark, JournalPhase::kNone, 0, 2, 0);
    }
    EXPECT_EQ(obs::current_request_id(), 7u);
    // An explicit rid wins over the scope.
    j.record(JournalKind::kMark, JournalPhase::kNone, 0, 3, 0, 42);
  }
  EXPECT_EQ(obs::current_request_id(), 0u);
  const auto recs = j.snapshot();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].rid, 7u);
  EXPECT_EQ(recs[1].rid, 9u);
  EXPECT_EQ(recs[2].rid, 42u);
}

TEST(Journal, WraparoundKeepsNewestRecords) {
  auto& j = Journal::global();
  j.set_capacity(8);
  for (int i = 1; i <= 100; ++i)
    j.record(JournalKind::kMark, JournalPhase::kNone, 0, i, 0);
  const auto recs = j.snapshot();
  ASSERT_EQ(recs.size(), 8u);
  for (std::size_t k = 0; k < recs.size(); ++k) {
    EXPECT_EQ(recs[k].seq, 93u + k);  // oldest-first, the last 8 of 100
    EXPECT_EQ(recs[k].v0, static_cast<std::int64_t>(93 + k));
  }
  const auto last3 = j.snapshot(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].seq, 98u);
  EXPECT_EQ(last3[2].seq, 100u);
}

// The seqlock contract: whatever a concurrent reader gets back is a record
// some writer actually wrote, never a blend of two writers (torn slots are
// dropped, not returned). Every record carries a checksum across its
// payload fields so a blend is detectable.
TEST(Journal, MtStressNoTornRecords) {
  auto& j = Journal::global();
  j.set_capacity(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};

  auto checksum = [](std::int64_t t, std::int64_t i) {
    return (t + 1) * 1'000'003 + i * 7919;
  };
  auto verify = [&](const std::vector<JournalRecord>& recs) {
    for (const auto& r : recs) {
      if (r.kind != JournalKind::kMark) continue;
      ASSERT_LT(r.v0, kThreads);
      ASSERT_EQ(r.dur_ns, checksum(r.v0, r.v1))
          << "torn record leaked: seq " << r.seq;
      ASSERT_EQ(r.rid, static_cast<std::uint64_t>(r.v0) * kPerThread +
                           static_cast<std::uint64_t>(r.v1));
    }
  };

  std::thread reader([&] {
    // do-while: on a single-core box the writers can finish before this
    // thread is first scheduled; one snapshot must still happen.
    do {
      std::uint64_t torn = 0;
      const auto recs = j.snapshot(0, &torn);
      verify(recs);
    } while (!stop.load(std::memory_order_relaxed));
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        j.record(JournalKind::kMark, JournalPhase::kNone, checksum(t, i), t,
                 i, static_cast<std::uint64_t>(t) * kPerThread +
                        static_cast<std::uint64_t>(i));
    });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(j.head(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Quiescent snapshot: full ring, zero torn, all checksums intact, all
  // sequence numbers distinct and contiguous.
  std::uint64_t torn = 0;
  const auto recs = j.snapshot(0, &torn);
  EXPECT_EQ(torn, 0u);
  ASSERT_EQ(recs.size(), 256u);
  verify(recs);
  for (std::size_t k = 1; k < recs.size(); ++k)
    EXPECT_EQ(recs[k].seq, recs[k - 1].seq + 1);
}

TEST(Journal, BinaryDumpRoundTripsAndToleratesTruncation) {
  auto& j = Journal::global();
  j.set_capacity(32);
  for (int i = 1; i <= 5; ++i)
    j.record(JournalKind::kMark, JournalPhase::kRender, i * 10, i, -i, 99);
  const std::string path = tmp_path("roundtrip");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(j.write_binary(::fileno(f)));
    std::fclose(f);
  }
  std::vector<JournalRecord> recs;
  std::string err;
  ASSERT_TRUE(obs::read_journal_file(path, &recs, &err)) << err;
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t k = 0; k < recs.size(); ++k) {
    EXPECT_EQ(recs[k].seq, k + 1);
    EXPECT_EQ(recs[k].v0, static_cast<std::int64_t>(k + 1));
    EXPECT_EQ(recs[k].v1, -static_cast<std::int64_t>(k + 1));
    EXPECT_EQ(recs[k].dur_ns, static_cast<std::int64_t>((k + 1) * 10));
    EXPECT_EQ(recs[k].rid, 99u);
    EXPECT_EQ(recs[k].kind, JournalKind::kMark);
    EXPECT_EQ(recs[k].phase, JournalPhase::kRender);
  }
  // A dump cut mid-record (a dying process) drops the partial tail only.
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(sizeof(obs::JournalFileHeader) +
                                          2 * sizeof(JournalRecord) + 13)),
            0);
  recs.clear();
  ASSERT_TRUE(obs::read_journal_file(path, &recs, &err)) << err;
  EXPECT_EQ(recs.size(), 2u);
  // A wrong magic is rejected outright.
  {
    std::ofstream bad(path, std::ios::binary | std::ios::trunc);
    bad << "not a journal dump at all";
  }
  EXPECT_FALSE(obs::read_journal_file(path, &recs, &err));
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

// Crash-dump smoke: a forked child installs the handler, journals marker
// records, and abort()s; the parent must find the markers in the dump and
// the child must still die of SIGABRT (the handler re-raises).
TEST(Journal, CrashDumpSurvivesAbort) {
  const std::string path = tmp_path("crash");
  std::remove(path.c_str());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto& j = Journal::global();
    j.set_capacity(64);
    obs::set_crash_dump_path(path.c_str());
    obs::install_crash_handler();
    for (int i = 1; i <= 10; ++i)
      j.record(JournalKind::kMark, JournalPhase::kNone, 0, 1000 + i, 0, 77);
    std::abort();  // handler dumps, then re-raises -> child dies of SIGABRT
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  // The handler suffixes the dump with the dying pid so concurrent workers
  // sharing one base path never clobber each other's dumps.
  const std::string dump = path + "." + std::to_string(pid);
  std::vector<JournalRecord> recs;
  std::string err;
  ASSERT_TRUE(obs::read_journal_file(dump, &recs, &err)) << err;
  int markers = 0;
  for (const auto& r : recs)
    if (r.kind == JournalKind::kMark && r.rid == 77 && r.v0 >= 1001 &&
        r.v0 <= 1010)
      ++markers;
  EXPECT_EQ(markers, 10) << recs.size() << " records in dump";
  std::remove(dump.c_str());
}

// --- the serve path: rids, dispositions, stats parse-back --------------------

// Every response's disposition must be reconstructible from the journal by
// filtering on the rid the response line carries (the acceptance contract
// `isex tail --rid N` relies on).
TEST(JournalServe, DispositionReconstructibleByRid) {
  auto& j = Journal::global();
  j.set_capacity(1024);
  serve::ServerOptions so;
  so.shed1_depth = 2;
  so.shed2_depth = 4;
  serve::Server server{so};

  struct Want {
    std::string response;
    obs::Disposition d;
  };
  std::vector<Want> wants;
  wants.push_back({server.handle_line(inline_select("a")),
                   obs::Disposition::kExact});
  wants.push_back({server.handle_line(inline_select("b")),
                   obs::Disposition::kCached});
  wants.push_back({server.handle_line(inline_select("c"), 3),
                   obs::Disposition::kShed});
  wants.push_back({server.handle_line("{\"cmd\":"), obs::Disposition::kError});

  // The response lines name their rids in every build — the rid is a server
  // member, not an obs artifact.
  for (std::size_t i = 0; i < wants.size(); ++i)
    EXPECT_NE(wants[i].response.find("\"rid\":" + std::to_string(i + 1)),
              std::string::npos)
        << wants[i].response;
  if (!ISEX_OBS_ENABLED)
    GTEST_SKIP() << "library instrumentation compiled out (ISEX_NO_OBS)";

  std::map<std::uint64_t, std::vector<JournalRecord>> by_rid;
  for (const auto& r : j.snapshot())
    if (r.rid != 0) by_rid[r.rid].push_back(r);

  for (std::size_t i = 0; i < wants.size(); ++i) {
    const std::uint64_t rid = i + 1;
    ASSERT_TRUE(by_rid.count(rid)) << "rid " << rid << " left no records";
    const auto& recs = by_rid[rid];
    EXPECT_EQ(recs.front().kind, JournalKind::kRequest);
    EXPECT_EQ(recs.back().kind, JournalKind::kResponse);
    EXPECT_EQ(recs.back().v0, static_cast<std::int64_t>(wants[i].d))
        << "rid " << rid << ": journal disagrees with the response";
    EXPECT_EQ(recs.back().v1,
              static_cast<std::int64_t>(wants[i].response.size()));
  }
  // The cache hit carries its lookup evidence; the shed request its rung.
  bool hit_seen = false, shed_seen = false;
  for (const auto& r : by_rid[2])
    hit_seen |= r.kind == JournalKind::kCacheLookup && r.v0 == 1;
  for (const auto& r : by_rid[3])
    shed_seen |= r.kind == JournalKind::kShed && r.v0 == 1;
  EXPECT_TRUE(hit_seen);
  EXPECT_TRUE(shed_seen);
}

TEST(JournalServe, StatsJsonParsesBackWithLatencyPercentiles) {
  serve::Server server{serve::ServerOptions{}};
  (void)server.handle_line(inline_select("a"));
  (void)server.handle_line(inline_select("b"));  // cached
  const std::string stats =
      server.handle_line("{\"id\":\"s\",\"cmd\":\"stats\"}", 5);
  serve::JsonParseResult pr = serve::json_parse(stats);
  ASSERT_TRUE(pr.ok()) << pr.error << "\n" << stats;
  const serve::Json* result = pr.value.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("queue_depth")->as_number(), 5);
  EXPECT_EQ(result->find("solved")->as_number(), 1);  // the hit is not a solve
  const serve::Json* cache = result->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hits")->as_number(), 1);
  EXPECT_EQ(cache->find("entries")->as_number(), 1);
  const serve::Json* lat = result->find("latency_us");
  ASSERT_NE(lat, nullptr);
  for (const char* cls : {"total", "exact", "degraded", "shed", "cached",
                          "error"}) {
    const serve::Json* h = lat->find(cls);
    ASSERT_NE(h, nullptr) << cls;
    for (const char* stat : {"count", "mean", "min", "max", "p50", "p95",
                             "p99"})
      ASSERT_NE(h->find(stat), nullptr) << cls << "." << stat;
  }
  // Two solves: one exact, one cached; both land in `total`.
  EXPECT_EQ(lat->find("total")->find("count")->as_number(), 2);
  EXPECT_EQ(lat->find("exact")->find("count")->as_number(), 1);
  EXPECT_EQ(lat->find("cached")->find("count")->as_number(), 1);
  const serve::Json* p95 = lat->find("exact")->find("p95");
  EXPECT_GE(p95->as_number(), lat->find("exact")->find("min")->as_number());
  EXPECT_LE(p95->as_number(), lat->find("exact")->find("max")->as_number());
}

TEST(JournalServe, IntrospectJsonParsesBack) {
  auto& j = Journal::global();
  j.set_capacity(128);
  serve::Server server{serve::ServerOptions{}};
  (void)server.handle_line(inline_select("a"));
  const std::string resp =
      server.handle_line("{\"id\":\"i\",\"cmd\":\"introspect\"}");
  serve::JsonParseResult pr = serve::json_parse(resp);
  ASSERT_TRUE(pr.ok()) << pr.error;
  const serve::Json* result = pr.value.find("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->find("stats"), nullptr);
  const serve::Json* jj = result->find("journal");
  ASSERT_NE(jj, nullptr);
  EXPECT_EQ(jj->find("capacity")->as_number(), 128);
  if (ISEX_OBS_ENABLED) {
    EXPECT_GT(jj->find("head")->as_number(), 0);
  }
  EXPECT_EQ(jj->find("next_rid")->as_number(), 2);  // introspect itself is #2
  const serve::Json* opts = result->find("options");
  ASSERT_NE(opts, nullptr);
  EXPECT_EQ(opts->find("queue_capacity")->as_number(), 64);
  ASSERT_NE(result->find("metrics"), nullptr);
}

// The journal must never change what the server answers: the same request
// sequence with the recorder on and off yields byte-identical responses
// (modulo the wall-clock elapsed_ms envelope field). This is the in-process
// half of the ISEX_NO_OBS bit-identity contract; journal_noop_test covers
// the compiled-out half.
TEST(JournalServe, ResponsesBitIdenticalWithJournalDisabled) {
  auto normalize = [](std::string s) {
    static const std::regex volatile_ms("\"elapsed_ms\":[0-9.eE+-]+");
    return std::regex_replace(s, volatile_ms, "\"elapsed_ms\":0");
  };
  auto run = [&](bool journal_on) {
    auto& j = Journal::global();
    j.set_capacity(256);
    j.set_enabled(journal_on);
    serve::ServerOptions so;
    so.shed1_depth = 2;
    serve::Server server{so};
    std::string all;
    all += normalize(server.handle_line(inline_select("a")));
    all += normalize(server.handle_line(inline_select("b")));      // cached
    all += normalize(server.handle_line(inline_select("c"), 3));   // shed
    all += normalize(server.handle_line("{\"id\":\"p\",\"cmd\":\"ping\"}"));
    all += normalize(server.handle_line("garbage"));
    return all;
  };
  const std::string with = run(true);
  const std::string without = run(false);
  Journal::global().set_enabled(true);
  EXPECT_EQ(with, without);
}

TEST(JournalServe, HistogramQuantileInterpolates) {
  // A private registry yields the public HistogramSnapshot shape.
  obs::Registry reg;
  auto& rh = reg.histogram("q");
  for (int i = 1; i <= 1000; ++i) rh.record(i);
  const auto snap = reg.snapshot().histograms.at("q");
  EXPECT_EQ(obs::histogram_quantile(snap, 0), 1);
  EXPECT_EQ(obs::histogram_quantile(snap, 1), 1000);
  const double p50 = obs::histogram_quantile(snap, 0.5);
  EXPECT_GE(p50, 250);  // pow2 buckets: exact inside [511..1000] bucket,
  EXPECT_LE(p50, 750);  // interpolated below; generous sanity band
  EXPECT_GE(obs::histogram_quantile(snap, 0.99), 900);
}

}  // namespace
}  // namespace isex
