// Chapter 5 tests: MLGP output legality/disjointness, comparison against the
// exact single cut on small regions, the IS baseline, and the end-to-end
// iterative scheme.
#include <gtest/gtest.h>

#include "isex/mlgp/is_baseline.hpp"
#include "isex/mlgp/iterative.hpp"
#include "isex/mlgp/mlgp.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/workloads/workloads.hpp"
#include "test_util.hpp"

namespace isex::mlgp {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

class MlgpProperty : public ::testing::TestWithParam<int> {};

TEST_P(MlgpProperty, PartitionsAreLegalDisjointCandidates) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 151 + 3);
  const ir::Dfg d = isex::testing::random_dfg(rng, 4, 80, 0.08);
  MlgpOptions opts;
  util::Rng algo_rng(42);
  const auto cis = generate_for_block(d, lib(), opts, algo_rng);
  auto covered = d.empty_set();
  for (const auto& c : cis) {
    EXPECT_TRUE(ise::is_legal(d, c.nodes, opts.constraints));
    EXPECT_GT(c.est.gain_per_exec, 0);
    EXPECT_FALSE(c.nodes.intersects(covered)) << "overlapping CIs";
    covered |= c.nodes;
  }
}

TEST_P(MlgpProperty, DeterministicGivenSeed) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 157 + 5);
  const ir::Dfg d = isex::testing::random_dfg(rng, 3, 50, 0.1);
  util::Rng r1(7), r2(7);
  const auto a = generate_for_block(d, lib(), MlgpOptions{}, r1);
  const auto b = generate_for_block(d, lib(), MlgpOptions{}, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].nodes, b[i].nodes);
}

TEST_P(MlgpProperty, CapturesMostOfTheSingleCutGain) {
  // On small single-region graphs MLGP (which must cover with disjoint CIs)
  // should collectively reach at least the best single cut's gain.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 163 + 9);
  const ir::Dfg d = isex::testing::random_dfg(rng, 3, 14, 0.0);
  util::Rng algo_rng(3);
  const auto cis = generate_for_block(d, lib(), MlgpOptions{}, algo_rng);
  double mlgp_gain = 0;
  for (const auto& c : cis) mlgp_gain += c.est.gain_per_exec;
  const auto sc = ise::optimal_single_cut(d, lib(), ise::SingleCutOptions{});
  const double single = sc.best ? sc.best->est.gain_per_exec : 0;
  EXPECT_GE(mlgp_gain, 0.6 * single);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlgpProperty, ::testing::Range(0, 12));

TEST(Mlgp, HandlesGiantBlockQuickly) {
  auto prog = workloads::make_3des();
  int big = 0;
  for (int b = 0; b < prog.num_blocks(); ++b)
    if (prog.block(b).dfg.num_nodes() >
        prog.block(big).dfg.num_nodes())
      big = b;
  ASSERT_GT(prog.block(big).dfg.num_nodes(), 2000);
  util::Rng rng(1);
  util::Stopwatch sw;
  const auto cis = generate_for_block(prog.block(big).dfg, lib(),
                                      MlgpOptions{}, rng);
  EXPECT_LT(sw.seconds(), 10.0);
  EXPECT_GT(cis.size(), 10u);
}

TEST(Mlgp, RatioMatchingAblationStillLegal) {
  util::Rng rng(99);
  const ir::Dfg d = isex::testing::random_dfg(rng, 4, 60, 0.08);
  MlgpOptions random_match;
  random_match.ratio_matching = false;
  util::Rng algo_rng(5);
  const auto cis = generate_for_block(d, lib(), random_match, algo_rng);
  for (const auto& c : cis)
    EXPECT_TRUE(ise::is_legal(d, c.nodes, random_match.constraints));
}

TEST(IsBaseline, CutsAreDisjointAndGainsDecrease) {
  util::Rng rng(17);
  const ir::Dfg d = isex::testing::random_dfg(rng, 4, 40, 0.05);
  IsOptions opts;
  const auto res = iterative_selection(d, lib(), opts);
  ASSERT_TRUE(res.completed);
  auto covered = d.empty_set();
  double prev = 1e18;
  for (const auto& s : res.steps) {
    EXPECT_FALSE(s.ci.nodes.intersects(covered));
    covered |= s.ci.nodes;
    // Later cuts work on a depleted graph: gains are non-increasing.
    EXPECT_LE(s.ci.est.gain_per_exec, prev + 1e-9);
    prev = s.ci.est.gain_per_exec;
  }
}

TEST(IsBaseline, FirstCutMatchesOptimalSingleCut) {
  util::Rng rng(23);
  const ir::Dfg d = isex::testing::random_dfg(rng, 3, 14, 0.1);
  const auto res = iterative_selection(d, lib(), IsOptions{});
  const auto sc = ise::optimal_single_cut(d, lib(), ise::SingleCutOptions{});
  if (sc.best) {
    ASSERT_FALSE(res.steps.empty());
    EXPECT_DOUBLE_EQ(res.steps[0].ci.est.gain_per_exec,
                     sc.best->est.gain_per_exec);
  } else {
    EXPECT_TRUE(res.steps.empty());
  }
}

// --- Iterative scheme (Algorithm 4) ----------------------------------------

std::vector<IterTask> small_taskset(double u) {
  std::vector<IterTask> tasks;
  for (const char* name : {"sha", "jfdctint", "ndes"}) {
    auto prog = workloads::make_benchmark(name);
    tasks.emplace_back(name, std::move(prog), 0.0);
  }
  // Equal utilization shares.
  for (auto& t : tasks) {
    const double wcet = t.program.wcet(ir::Program::sum_cost(
        [](const ir::Node& n) { return lib().sw_cycles(n); }));
    t.period = wcet / (u / static_cast<double>(tasks.size()));
  }
  return tasks;
}

TEST(Iterative, MakesUnschedulableSetSchedulable) {
  auto tasks = small_taskset(1.2);
  IterativeOptions opts;
  util::Rng rng(11);
  const auto res = iterative_customize(tasks, lib(), opts, rng);
  EXPECT_TRUE(res.met_target) << "final U = " << res.utilization;
  EXPECT_LE(res.utilization, 1.0 + 1e-9);
  EXPECT_GT(res.area, 0);
  ASSERT_FALSE(res.trace.empty());
  // Utilization decreases monotonically along the trace.
  double prev = 1.3;
  for (const auto& rec : res.trace) {
    EXPECT_LE(rec.utilization, prev + 1e-9);
    prev = rec.utilization;
  }
}

TEST(Iterative, AlreadySchedulableSetNeedsNoWork) {
  auto tasks = small_taskset(0.7);
  IterativeOptions opts;
  util::Rng rng(13);
  const auto res = iterative_customize(tasks, lib(), opts, rng);
  EXPECT_TRUE(res.met_target);
  EXPECT_TRUE(res.trace.empty());
  EXPECT_DOUBLE_EQ(res.area, 0);
}

TEST(Iterative, ImpossibleTargetReportsHonestly) {
  auto tasks = small_taskset(5.0);  // far beyond what CIs can recover
  IterativeOptions opts;
  util::Rng rng(17);
  const auto res = iterative_customize(tasks, lib(), opts, rng);
  EXPECT_FALSE(res.met_target);
  EXPECT_GT(res.utilization, 1.0);
  EXPECT_FALSE(res.selected.empty());  // it still tried
}

}  // namespace
}  // namespace isex::mlgp
