// isex::supervise tests: the supervisor<->worker wire protocol, deterministic
// chaos decisions, per-worker rlimits, and the full crash-isolated pool
// driven over real pipes — in-order responses under multi-worker dispatch,
// byte-identical results vs the single-process path, crash retry + poison
// quarantine, the hung-solve watchdog, the restart-storm circuit breaker,
// respawn after an external SIGKILL, and graceful drain.
//
// All signal-specific assertions use SIGABRT/SIGKILL: sanitizers may turn a
// SIGSEGV into a plain exit, but abort() and an external kill -9 terminate
// with the real signal everywhere.
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "isex/serve/json.hpp"
#include "isex/serve/server.hpp"
#include "isex/supervise/chaos.hpp"
#include "isex/supervise/frame.hpp"
#include "isex/supervise/worker.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ISEX_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ISEX_TEST_UNDER_SANITIZER 1
#endif
#endif

namespace isex::supervise {
namespace {

// --- frames ------------------------------------------------------------------

TEST(SuperviseFrame, RequestRoundTripOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  RequestHeader hdr;
  hdr.rid = 42;
  hdr.queue_depth = 7;
  const std::string line = "{\"cmd\":\"ping\"}";
  ASSERT_TRUE(write_frame(sv[0], hdr, line));

  RequestHeader got;
  std::string body;
  ASSERT_EQ(read_request_frame(sv[1], &got, &body, 1 << 20), 1);
  EXPECT_EQ(got.rid, 42u);
  EXPECT_EQ(got.queue_depth, 7);
  EXPECT_EQ(body, line);

  // encode_frame produces the same wire bytes write_frame sends.
  const std::string raw = encode_frame(hdr, line);
  ASSERT_EQ(::write(sv[0], raw.data(), raw.size()),
            static_cast<ssize_t>(raw.size()));
  ASSERT_EQ(read_request_frame(sv[1], &got, &body, 1 << 20), 1);
  EXPECT_EQ(body, line);

  // Clean EOF between frames reads as 0, not an error.
  ::close(sv[0]);
  EXPECT_EQ(read_request_frame(sv[1], &got, &body, 1 << 20), 0);
  ::close(sv[1]);
}

TEST(SuperviseFrame, ReaderReassemblesByteAtATime) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ResponseHeader hdr;
  hdr.rid = 9;
  hdr.nodes_charged = 123;
  hdr.disposition = 3;
  hdr.error_kind = 0;
  hdr.flags = kRespFlagCacheable;
  const std::string resp = "{\"ok\":true}";
  ASSERT_TRUE(write_frame(sv[0], hdr, resp));
  char buf[512];
  const ssize_t n = ::read(sv[1], buf, sizeof buf);
  ASSERT_GT(n, 0);
  ::close(sv[0]);
  ::close(sv[1]);

  FrameReader reader(1 << 20);
  ResponseHeader got;
  std::string body;
  for (ssize_t i = 0; i < n; ++i) {
    EXPECT_FALSE(reader.error());
    const bool complete = i + 1 == n;
    reader.append(buf + i, 1);
    EXPECT_EQ(reader.next(&got, &body), complete) << "byte " << i;
  }
  EXPECT_EQ(got.rid, 9u);
  EXPECT_EQ(got.nodes_charged, 123);
  EXPECT_EQ(got.flags, kRespFlagCacheable);
  EXPECT_EQ(body, resp);
  EXPECT_FALSE(reader.next(&got, &body));  // no second frame
}

TEST(SuperviseFrame, GarbageLengthPoisonsTheStream) {
  FrameReader reader(4096);
  const char junk[4] = {'\xff', '\xff', '\xff', '\xff'};
  reader.append(junk, 4);
  ResponseHeader hdr;
  std::string body;
  EXPECT_FALSE(reader.next(&hdr, &body));
  EXPECT_TRUE(reader.error());
  reader.reset();
  EXPECT_FALSE(reader.error());
}

// --- chaos -------------------------------------------------------------------

TEST(SuperviseChaos, DeterministicPureFunctionOfBytes) {
  const std::string line = "{\"id\":\"x\",\"cmd\":\"select\"}";
  const ChaosKind k = chaos_decision(line, 1.0, 7);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(chaos_decision(line, 1.0, 7), k);
  EXPECT_EQ(chaos_decision(line, 0.0, 7), ChaosKind::kNone);
  EXPECT_EQ(chaos_decision(line, -1.0, 7), ChaosKind::kNone);

  // Probability 1 always injects; different seeds decide independently.
  EXPECT_NE(chaos_decision(line, 1.0, 7), ChaosKind::kNone);
  int diverged = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed)
    diverged += chaos_decision(line, 1.0, seed) != k ? 1 : 0;
  EXPECT_GT(diverged, 0);
}

TEST(SuperviseChaos, MarkersForceTheKindWheneverChaosIsOn) {
  EXPECT_EQ(chaos_decision("x \"chaos\":\"abort\" y", 1e-9, 1),
            ChaosKind::kAbort);
  EXPECT_EQ(chaos_decision("{\"chaos\":\"segv\"}", 1e-9, 1), ChaosKind::kSegv);
  EXPECT_EQ(chaos_decision("{\"chaos\":\"hang\"}", 1e-9, 1), ChaosKind::kHang);
  EXPECT_EQ(chaos_decision("{\"chaos\":\"leak\"}", 1e-9, 1), ChaosKind::kLeak);
  // Chaos off: even explicit markers are inert.
  EXPECT_EQ(chaos_decision("{\"chaos\":\"abort\"}", 0.0, 1), ChaosKind::kNone);
}

TEST(SuperviseChaos, AllKindsAppearAndRateTracksProbability) {
  int kinds[5] = {0, 0, 0, 0, 0};
  int injected = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string line = "{\"id\":\"req" + std::to_string(i) + "\"}";
    ++kinds[static_cast<int>(chaos_decision(line, 1.0, 3))];
    if (chaos_decision(line, 0.05, 3) != ChaosKind::kNone) ++injected;
  }
  EXPECT_EQ(kinds[0], 0);  // p=1: every request sabotaged
  for (int k = 1; k <= 4; ++k) EXPECT_GT(kinds[k], 0) << "kind " << k;
  // p=0.05 over 2000 lines: expect ~100, allow wide slack.
  EXPECT_GT(injected, 40);
  EXPECT_LT(injected, 250);
}

// --- rlimits -----------------------------------------------------------------

TEST(SuperviseWorker, RlimitsApplyInAForkedChild) {
  serve::ServerOptions so;
  so.worker_nofile_limit = 64;
  so.worker_cpu_limit_seconds = 600;
  so.worker_mem_limit_bytes = std::size_t{1} << 30;
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    apply_worker_rlimits(so);
    struct rlimit rl{};
    if (::getrlimit(RLIMIT_CORE, &rl) != 0 || rl.rlim_cur != 0) ::_exit(10);
    if (::getrlimit(RLIMIT_NOFILE, &rl) != 0 || rl.rlim_cur != 64) ::_exit(11);
    if (::getrlimit(RLIMIT_CPU, &rl) != 0 || rl.rlim_cur != 600) ::_exit(12);
#ifndef ISEX_TEST_UNDER_SANITIZER
    if (::getrlimit(RLIMIT_AS, &rl) != 0 ||
        rl.rlim_cur != (rlim_t{1} << 30))
      ::_exit(13);
#endif
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// --- the pool, end to end over pipes -----------------------------------------

std::string inline_select(const std::string& id, double area = 3.0,
                          const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"cmd\":\"select\",\"area_budget\":" +
         serve::json_number(area) + extra +
         ",\"tasks\":[{\"name\":\"t0\",\"period\":100,\"configs\":"
         "[[0,50],[2,25]]},{\"name\":\"t1\",\"period\":200,\"configs\":"
         "[[0,80],[1,60],[3,40]]}],\"node_budget\":50000}";
}

/// Interactive pipe session against Server::run in a background thread:
/// send lines one at a time, read responses with a deadline, then finish().
class PipeSession {
 public:
  explicit PipeSession(serve::Server& server) {
    EXPECT_EQ(::pipe(in_), 0);
    EXPECT_EQ(::pipe(out_), 0);
    th_ = std::thread([&server, this] {
      rc_ = server.run(in_[0], out_[1]);
      ::close(out_[1]);
      ::close(in_[0]);
    });
  }
  ~PipeSession() {
    if (th_.joinable()) finish();
  }

  void send(const std::string& line) {
    const std::string l = line + "\n";
    ASSERT_EQ(::write(in_[1], l.data(), l.size()),
              static_cast<ssize_t>(l.size()));
  }

  /// Next response line, or "" after `timeout_ms` of silence (test failure).
  std::string recv_line(int timeout_ms = 20000) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      struct pollfd pfd {out_[0], POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr <= 0) {
        ADD_FAILURE() << "timed out waiting for a response line";
        return "";
      }
      char tmp[4096];
      const ssize_t n = ::read(out_[0], tmp, sizeof tmp);
      if (n <= 0) {
        ADD_FAILURE() << "server closed the response pipe";
        return "";
      }
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }

  int finish() {
    if (in_[1] >= 0) {
      ::close(in_[1]);
      in_[1] = -1;
    }
    th_.join();
    ::close(out_[0]);
    return rc_;
  }

  /// Joins WITHOUT closing stdin: the server must end the stream on its own
  /// (drain). Hangs the test (and trips the ctest timeout) if it does not.
  int join_exit() {
    th_.join();
    ::close(in_[1]);
    in_[1] = -1;
    ::close(out_[0]);
    return rc_;
  }

 private:
  int in_[2]{-1, -1}, out_[2]{-1, -1};
  std::thread th_;
  std::string buf_;
  int rc_ = -1;
};

/// First integer after `"key":` in a flat JSON rendering (good enough for
/// the introspect/stat fields these tests poke at).
long json_int_field(const std::string& s, const std::string& key,
                    std::size_t from = 0) {
  const std::size_t p = s.find("\"" + key + "\":", from);
  if (p == std::string::npos) return -1;
  return std::strtol(s.c_str() + p + key.size() + 3, nullptr, 10);
}

TEST(SupervisePool, InOrderMixedTrafficAndByteIdenticalResults) {
  // Reference pass: the exact same requests through the in-process path.
  serve::ServerOptions ref_so;
  serve::Server reference{ref_so};

  serve::ServerOptions so;
  so.workers = 2;
  serve::Server server{so};
  PipeSession session(server);

  std::vector<std::string> reqs;
  for (int i = 0; i < 10; ++i) {
    switch (i % 3) {
      case 0: reqs.push_back(inline_select("q" + std::to_string(i))); break;
      case 1: reqs.push_back("{\"id\":\"q" + std::to_string(i) +
                             "\",\"cmd\":\"ping\"}"); break;
      default: reqs.push_back("broken json " + std::to_string(i));
    }
  }
  for (const auto& r : reqs) session.send(r);
  const auto result_tail = [](const std::string& s) {
    const std::size_t p = s.find("\"result\":");
    return p == std::string::npos ? std::string() : s.substr(p);
  };
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const std::string line = session.recv_line();
    ASSERT_FALSE(line.empty());
    if (i % 3 == 2) {
      EXPECT_NE(line.find("parse_error"), std::string::npos) << line;
    } else {
      EXPECT_NE(line.find("\"id\":\"q" + std::to_string(i) + "\""),
                std::string::npos)
          << "out of order at " << i << ": " << line;
    }
    if (i % 3 == 0) {
      // The stable result object must be byte-identical to the
      // single-process server's answer for the same bytes.
      const std::string ref = reference.handle_line(reqs[i]);
      ASSERT_NE(line.find("\"ok\":true"), std::string::npos) << line;
      EXPECT_EQ(result_tail(line), result_tail(ref)) << line;
    }
  }

  // stats must show the pool working: dispatches happened, workers live.
  session.send("{\"cmd\":\"stats\"}");
  const std::string stats = session.recv_line();
  EXPECT_EQ(json_int_field(stats, "configured"), 2);
  EXPECT_EQ(json_int_field(stats, "live"), 2);
  EXPECT_GT(json_int_field(stats, "dispatched"), 0);
  EXPECT_EQ(session.finish(), 0);
}

TEST(SupervisePool, CrashRetryThenPoisonQuarantine) {
  serve::ServerOptions so;
  so.workers = 2;
  so.poison_kill_threshold = 2;
  so.chaos_probability = 1e-9;  // markers honored, dice ~never fire
  serve::Server server{so};
  PipeSession session(server);

  // The marker makes every worker that touches this line abort().
  const std::string poison =
      inline_select("p0", 3.0, ",\"chaos\":\"abort\"");
  session.send(poison);
  const std::string r1 = session.recv_line();
  EXPECT_NE(r1.find("\"code\":\"worker_crashed\""), std::string::npos) << r1;
  EXPECT_NE(r1.find("\"signal\":6"), std::string::npos) << r1;  // SIGABRT
  EXPECT_NE(r1.find("\"kills\":2"), std::string::npos) << r1;
  EXPECT_NE(r1.find("quarantined"), std::string::npos) << r1;

  // Same bytes again: refused up front, no worker ever sees it.
  session.send(poison);
  const std::string r2 = session.recv_line();
  EXPECT_NE(r2.find("\"code\":\"quarantined\""), std::string::npos) << r2;

  // The pool recovers: an innocent request still gets solved.
  session.send(inline_select("after"));
  const std::string r3 = session.recv_line();
  EXPECT_NE(r3.find("\"id\":\"after\""), std::string::npos) << r3;
  EXPECT_NE(r3.find("\"ok\":true"), std::string::npos) << r3;

  session.send("{\"cmd\":\"stats\"}");
  const std::string stats = session.recv_line();
  EXPECT_EQ(json_int_field(stats, "crashes"), 2);
  EXPECT_EQ(json_int_field(stats, "retried"), 1);
  EXPECT_EQ(json_int_field(stats, "quarantined"), 1);
  EXPECT_EQ(json_int_field(stats, "quarantine_hits"), 1);
  EXPECT_GE(json_int_field(stats, "respawns"), 1);
  EXPECT_EQ(session.finish(), 0);
}

TEST(SupervisePool, WatchdogKillsHungSolve) {
  serve::ServerOptions so;
  so.workers = 1;
  so.watchdog_seconds = 0.3;
  so.watchdog_grace_seconds = 0.1;
  so.chaos_probability = 1e-9;
  serve::Server server{so};
  PipeSession session(server);

  session.send(inline_select("h0", 3.0, ",\"chaos\":\"hang\""));
  const std::string r1 = session.recv_line();
  EXPECT_NE(r1.find("\"code\":\"worker_timeout\""), std::string::npos) << r1;

  // The replacement worker serves the next request.
  session.send(inline_select("after"));
  const std::string r2 = session.recv_line();
  EXPECT_NE(r2.find("\"ok\":true"), std::string::npos) << r2;

  session.send("{\"cmd\":\"stats\"}");
  const std::string stats = session.recv_line();
  EXPECT_EQ(json_int_field(stats, "timeouts"), 1);
  EXPECT_GE(json_int_field(stats, "respawns"), 1);
  EXPECT_EQ(session.finish(), 0);
}

TEST(SupervisePool, ExternalSigkillRespawnsAndServiceContinues) {
  serve::ServerOptions so;
  so.workers = 1;
  serve::Server server{so};
  PipeSession session(server);

  session.send("{\"cmd\":\"introspect\"}");
  const std::string intro = session.recv_line();
  const long pid = json_int_field(intro, "pid", intro.find("per_worker"));
  ASSERT_GT(pid, 0) << intro;
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGKILL), 0);
  ::usleep(50'000);  // let the death land before the next dispatch

  session.send(inline_select("alive"));
  const std::string r = session.recv_line();
  EXPECT_NE(r.find("\"id\":\"alive\""), std::string::npos) << r;
  EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;

  session.send("{\"cmd\":\"introspect\"}");
  const std::string intro2 = session.recv_line();
  const long pid2 = json_int_field(intro2, "pid", intro2.find("per_worker"));
  EXPECT_GT(pid2, 0);
  EXPECT_NE(pid2, pid);
  EXPECT_GE(json_int_field(intro2, "respawns"), 1);
  EXPECT_EQ(session.finish(), 0);
}

TEST(SupervisePool, RestartStormOpensBreakerAndFailsFast) {
  serve::ServerOptions so;
  so.workers = 1;
  so.poison_kill_threshold = 1;  // every crash is final: no retries
  so.breaker_max_respawns = 1;
  so.breaker_window_seconds = 60;
  so.breaker_cooldown_seconds = 60;
  so.chaos_probability = 1e-9;
  serve::Server server{so};
  PipeSession session(server);

  // Three distinct poison lines: two respawns trip the breaker, the third
  // death leaves no live worker behind it.
  for (int i = 0; i < 3; ++i)
    session.send(
        inline_select("boom" + std::to_string(i), 3.0, ",\"chaos\":\"abort\""));
  session.send(inline_select("starved"));

  for (int i = 0; i < 3; ++i) {
    const std::string r = session.recv_line();
    EXPECT_NE(r.find("\"code\":\"worker_crashed\""), std::string::npos) << r;
  }
  const std::string rejected = session.recv_line();
  EXPECT_NE(rejected.find("\"code\":\"worker_unavailable\""),
            std::string::npos)
      << rejected;
  EXPECT_NE(rejected.find("\"retry_after_ms\":"), std::string::npos);

  session.send("{\"cmd\":\"stats\"}");
  const std::string stats = session.recv_line();
  EXPECT_GE(json_int_field(stats, "breaker_opens"), 1);
  EXPECT_GE(json_int_field(stats, "breaker_rejected"), 1);
  EXPECT_EQ(session.finish(), 0);
}

TEST(SupervisePool, SigtermDrainsCleanly) {
  serve::install_signal_handlers();
  serve::consume_pending_signal();
  robust::clear_global_cancel();

  serve::ServerOptions so;
  so.workers = 2;
  so.drain_timeout_seconds = 5.0;
  serve::Server server{so};
  PipeSession session(server);

  session.send(inline_select("d0"));
  EXPECT_NE(session.recv_line().find("\"ok\":true"), std::string::npos);
  ::raise(SIGTERM);
  // No EOF on stdin: the drain path alone must end the stream.
  EXPECT_EQ(session.join_exit(), 0);
  EXPECT_EQ(serve::consume_pending_signal(), SIGTERM);
  robust::clear_global_cancel();
}

}  // namespace
}  // namespace isex::supervise
