// The execution-budget layer: Budget semantics, the anytime-result protocol
// of every bounded solver, and the graceful-degradation ladder.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <unordered_set>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/ise/single_cut.hpp"
#include "isex/robust/fallback.hpp"
#include "isex/rt/schedulability.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/rtreconfig/algorithms.hpp"
#include "test_util.hpp"

namespace isex::robust {
namespace {

// --- Budget ------------------------------------------------------------------

TEST(Budget, UnlimitedNeverTrips) {
  Budget b;
  EXPECT_FALSE(b.has_limits());
  for (int i = 0; i < 100000; ++i) EXPECT_FALSE(b.charge());
  EXPECT_FALSE(b.exhausted());
  EXPECT_FALSE(b.report().exhausted());
}

TEST(Budget, NodeBudgetLatches) {
  Budget b;
  b.set_node_budget(10);
  int trips = 0;
  for (int i = 0; i < 20; ++i)
    if (b.charge()) ++trips;
  EXPECT_EQ(trips, 10);  // charges 11..20 all report exhaustion
  EXPECT_TRUE(b.exhausted_cached());
  const auto r = b.report();
  EXPECT_TRUE(r.nodes_exhausted);
  EXPECT_FALSE(r.time_exhausted);
  EXPECT_EQ(r.reason(), "nodes");
  EXPECT_EQ(r.nodes_charged, 20);
}

TEST(Budget, TimeBudgetTripsAfterDeadline) {
  Budget b;
  b.set_time_budget(1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // exhausted() re-reads the clock without needing kTimeCheckStride charges.
  EXPECT_TRUE(b.exhausted());
  EXPECT_TRUE(b.report().time_exhausted);
  EXPECT_EQ(b.report().reason(), "time");
}

TEST(Budget, TimeCheckedEveryStrideCharges) {
  Budget b;
  b.set_time_budget(1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  bool tripped = false;
  for (long i = 0; i < 2 * Budget::kTimeCheckStride && !tripped; ++i)
    tripped = b.charge();
  EXPECT_TRUE(tripped);
}

TEST(Budget, MemRefusalDoesNotPoisonCharge) {
  Budget b;
  b.set_mem_budget(1000);
  EXPECT_FALSE(b.charge_mem(600));   // fits
  EXPECT_TRUE(b.charge_mem(600));    // refused: would exceed
  EXPECT_FALSE(b.charge());          // refusal does NOT latch exhaustion
  EXPECT_FALSE(b.exhausted());
  EXPECT_TRUE(b.report().mem_exhausted);  // but the report records it
  b.release_mem(600);
  EXPECT_FALSE(b.charge_mem(900));   // a smaller consumer fits again
  EXPECT_EQ(b.report().mem_peak_bytes, 900u);
}

TEST(Budget, RetryBudgetSlicesThePrimary) {
  Budget primary;
  primary.set_time_budget(1.0);
  primary.set_node_budget(100000);
  primary.set_mem_budget(1 << 20);
  FallbackOptions fb;
  Budget slice = make_retry_budget(primary, fb);
  const auto r = slice.report();
  EXPECT_DOUBLE_EQ(r.time_budget_seconds, 0.25);
  EXPECT_EQ(r.node_budget, 25000);
  EXPECT_EQ(r.mem_budget_bytes, std::size_t{1} << 20);
  // Tiny node budgets still give retries the floor.
  Budget tiny;
  tiny.set_node_budget(10);
  EXPECT_EQ(make_retry_budget(tiny, fb).report().node_budget,
            fb.retry_node_floor);
}

// --- solve_with_fallback -----------------------------------------------------

using IntRungs =
    std::vector<std::pair<std::string, std::function<Outcome<int>(Budget*)>>>;

Outcome<int> make(int v, Status s) {
  Outcome<int> o;
  o.value = v;
  o.status = s;
  return o;
}

TEST(Fallback, FirstRungExactStopsLadder) {
  int calls = 0;
  IntRungs rungs;
  rungs.emplace_back("a", [&](Budget*) { ++calls; return make(1, Status::kExact); });
  rungs.emplace_back("b", [&](Budget*) { ++calls; return make(2, Status::kExact); });
  const auto out = solve_with_fallback<int>(
      nullptr, {}, rungs, [](const Outcome<int>& x, const Outcome<int>& y) {
        return x.value > y.value;
      });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(out.value, 1);
  EXPECT_EQ(out.status, Status::kExact);
  EXPECT_EQ(out.detail, "a:Exact");
}

TEST(Fallback, LowerRungCompletionIsDegradedAndBestValueWins) {
  IntRungs rungs;
  rungs.emplace_back(
      "a", [&](Budget*) { return make(5, Status::kBudgetTruncated); });
  rungs.emplace_back("b", [&](Budget*) { return make(3, Status::kExact); });
  const auto out = solve_with_fallback<int>(
      nullptr, {}, rungs, [](const Outcome<int>& x, const Outcome<int>& y) {
        return x.value > y.value;
      });
  // Rung a's incumbent (5) beats rung b's degraded answer (3); the label
  // honestly stays BudgetTruncated.
  EXPECT_EQ(out.value, 5);
  EXPECT_EQ(out.status, Status::kBudgetTruncated);
  EXPECT_EQ(out.detail, "a:BudgetTruncated -> b:Degraded");
}

TEST(Fallback, InfeasibleEndsTheLadder) {
  int calls = 0;
  IntRungs rungs;
  rungs.emplace_back(
      "a", [&](Budget*) { ++calls; return make(0, Status::kInfeasible); });
  rungs.emplace_back("b", [&](Budget*) { ++calls; return make(1, Status::kExact); });
  const auto out = solve_with_fallback<int>(
      nullptr, {}, rungs, [](const Outcome<int>&, const Outcome<int>&) {
        return false;
      });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(out.status, Status::kInfeasible);
}

// --- bounded solver entry points --------------------------------------------

TEST(BoundedSolvers, NoBudgetIsExactAndIdenticalToPlainSolver) {
  util::Rng rng(11);
  for (int it = 0; it < 20; ++it) {
    auto ts = testing::random_taskset(rng, 5, 4);
    ts.sort_by_period();
    const double area = 0.5 * ts.max_area();
    const auto plain = customize::select_edf(ts, area);
    const auto bounded =
        customize::select_edf_bounded(ts, area, customize::EdfOptions{});
    EXPECT_EQ(bounded.status, Status::kExact);
    EXPECT_EQ(bounded.optimality_gap, 0.0);
    EXPECT_EQ(bounded.value.assignment, plain.assignment);
    EXPECT_DOUBLE_EQ(bounded.value.utilization, plain.utilization);

    const auto rplain = customize::select_rms(ts, area);
    const auto rbounded =
        customize::select_rms_bounded(ts, area, customize::RmsOptions{});
    // A complete search that finds no RMS-schedulable assignment is a proof
    // of infeasibility; otherwise the run must be exact.
    EXPECT_EQ(rbounded.status, rplain.found_feasible ? Status::kExact
                                                     : Status::kInfeasible);
    EXPECT_EQ(rbounded.value.assignment, rplain.assignment);
  }
}

TEST(BoundedSolvers, DegenerateTaskSetIsInfeasibleNotACrash) {
  rt::TaskSet empty;
  EXPECT_EQ(customize::select_edf_bounded(empty, 10, {}).status,
            Status::kInfeasible);

  rt::TaskSet bad;
  rt::Task t;
  t.name = "zero-period";
  t.period = 0;
  t.configs.push_back({0, 100});
  bad.tasks.push_back(t);
  const auto out = customize::select_edf_bounded(bad, 10, {});
  EXPECT_EQ(out.status, Status::kInfeasible);
  EXPECT_NE(out.detail.find("zero-period"), std::string::npos);

  // RMS additionally rejects task sets not in priority order.
  rt::TaskSet unsorted;
  unsorted.tasks.push_back({"slow", 100, {{0, 10}}});
  unsorted.tasks.push_back({"fast", 10, {{0, 2}}});
  EXPECT_EQ(customize::select_rms_bounded(unsorted, 10, {}).status,
            Status::kInfeasible);
}

TEST(BoundedSolvers, TruncatedEdfIsFeasibleAndGapBounded) {
  util::Rng rng(29);
  for (int it = 0; it < 10; ++it) {
    auto ts = testing::random_taskset(rng, 6, 5);
    ts.sort_by_period();
    const double area = 0.5 * ts.max_area();
    Budget b;
    b.set_node_budget(5);  // starvation: the DP is cut immediately
    customize::EdfOptions o;
    o.budget = &b;
    const auto out = customize::select_edf_bounded(ts, area, o);
    ASSERT_EQ(out.status, Status::kBudgetTruncated);
    EXPECT_GE(out.optimality_gap, 0.0);
    // The incumbent is a real assignment within the area budget.
    ASSERT_EQ(out.value.assignment.size(), ts.size());
    double used = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      ASSERT_GE(out.value.assignment[i], 0);
      ASSERT_LT(static_cast<std::size_t>(out.value.assignment[i]),
                ts.tasks[i].configs.size());
      used += ts.tasks[i]
                  .configs[static_cast<std::size_t>(out.value.assignment[i])]
                  .area;
    }
    EXPECT_LE(used, area + 1e-9);
  }
}

TEST(BoundedSolvers, MemBudgetFallsBackToBaselineSelection) {
  util::Rng rng(31);
  auto ts = testing::random_taskset(rng, 6, 5);
  ts.sort_by_period();
  Budget b;
  b.set_mem_budget(64);  // DP table cannot possibly fit
  customize::EdfOptions o;
  o.budget = &b;
  const auto out = customize::select_edf_bounded(ts, 0.5 * ts.max_area(), o);
  EXPECT_EQ(out.status, Status::kBudgetTruncated);
  EXPECT_TRUE(out.budget.mem_exhausted);
  // All-software baseline: feasible at zero area.
  for (int a : out.value.assignment) EXPECT_EQ(a, 0);
}

TEST(BoundedSolvers, SingleCutTruncationKeepsIncumbent) {
  util::Rng rng(17);
  const auto dfg = testing::random_dfg(rng, 6, 120, 0.0);
  const auto& lib = hw::CellLibrary::standard_018um();
  ise::SingleCutOptions so;
  Budget b;
  b.set_node_budget(50);
  so.budget = &b;
  const auto r = ise::optimal_single_cut(dfg, lib, so);
  EXPECT_EQ(r.status, Status::kBudgetTruncated);
  EXPECT_GE(r.optimality_gap, 0.0);
  ise::SingleCutOptions unlimited;
  const auto exact = ise::optimal_single_cut(dfg, lib, unlimited);
  EXPECT_EQ(exact.status, Status::kExact);
  const double gain = r.best ? r.best->total_gain() : 0.0;
  const double exact_gain = exact.best ? exact.best->total_gain() : 0.0;
  EXPECT_LE(gain, exact_gain + 1e-9);
}

TEST(BoundedSolvers, EnumerationTruncationReportsCoverageGap) {
  util::Rng rng(19);
  const auto dfg = testing::random_dfg(rng, 6, 140, 0.0);
  const auto& lib = hw::CellLibrary::standard_018um();
  ise::EnumOptions o;
  Budget b;
  b.set_node_budget(30);
  o.budget = &b;
  const auto out = ise::enumerate_candidates_bounded(dfg, lib, o);
  EXPECT_EQ(out.status, Status::kBudgetTruncated);
  EXPECT_GT(out.optimality_gap, 0.0);
  EXPECT_LE(out.optimality_gap, 1.0);
  EXPECT_NE(out.detail.find("seeds"), std::string::npos);
}

TEST(BoundedSolvers, ReconfigEmptyProblemIsInfeasible) {
  rtreconfig::Problem p;
  EXPECT_EQ(rtreconfig::dp_partition_bounded(p, nullptr).status,
            Status::kInfeasible);
}

// --- ladders -----------------------------------------------------------------

TEST(Ladders, EdfLadderUnderStarvationStaysFeasible) {
  util::Rng rng(41);
  for (int it = 0; it < 10; ++it) {
    auto ts = testing::random_taskset(rng, 6, 5);
    ts.sort_by_period();
    const double area = 0.5 * ts.max_area();
    Budget b;
    b.set_node_budget(3);
    const auto out = robust::select_edf_with_fallback(
        ts, area, customize::EdfOptions{}, &b);
    EXPECT_NE(out.status, Status::kInfeasible);
    EXPECT_NE(out.status, Status::kExact);  // 3 nodes cannot finish the DP
    EXPECT_GE(out.optimality_gap, 0.0);
    double used = 0;
    for (std::size_t i = 0; i < ts.size(); ++i)
      used += ts.tasks[i]
                  .configs[static_cast<std::size_t>(out.value.assignment[i])]
                  .area;
    EXPECT_LE(used, area + 1e-9);
    EXPECT_NE(out.detail.find("dp:BudgetTruncated"), std::string::npos);
  }
}

TEST(Ladders, RmsLadderProducesRmsValidAnswer) {
  util::Rng rng(43);
  for (int it = 0; it < 10; ++it) {
    auto ts = testing::random_taskset(rng, 6, 5);
    ts.sort_by_period();
    const double area = 0.5 * ts.max_area();
    Budget b;
    b.set_node_budget(3);
    const auto out = robust::select_rms_with_fallback(
        ts, area, customize::RmsOptions{}, &b);
    EXPECT_NE(out.status, Status::kInfeasible);
    if (out.value.schedulable) {
      std::vector<double> c, p;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        c.push_back(
            ts.tasks[i]
                .configs[static_cast<std::size_t>(out.value.assignment[i])]
                .cycles);
        p.push_back(ts.tasks[i].period);
      }
      EXPECT_TRUE(rt::rms_schedulable(c, p));
    }
  }
}

TEST(Ladders, UnlimitedLadderEqualsPlainSolver) {
  util::Rng rng(47);
  auto ts = testing::random_taskset(rng, 5, 4);
  ts.sort_by_period();
  const double area = 0.5 * ts.max_area();
  const auto out = robust::select_edf_with_fallback(
      ts, area, customize::EdfOptions{}, nullptr);
  const auto plain = customize::select_edf(ts, area);
  EXPECT_EQ(out.status, Status::kExact);
  EXPECT_EQ(out.value.assignment, plain.assignment);
}

TEST(Ladders, EnumerationLadderMergesRungPools) {
  util::Rng rng(53);
  const auto dfg = testing::random_dfg(rng, 6, 100, 0.0);
  const auto& lib = hw::CellLibrary::standard_018um();
  Budget b;
  b.set_node_budget(20);
  const auto out =
      robust::enumerate_with_fallback(dfg, lib, ise::EnumOptions{}, &b);
  EXPECT_NE(out.status, Status::kInfeasible);
  // The miso rung is linear and unbudgeted, so the pool is never empty on a
  // DFG with valid ops.
  EXPECT_FALSE(out.value.empty());
  // No duplicate candidate node sets across merged rungs.
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  for (const auto& c : out.value) EXPECT_TRUE(seen.insert(c.nodes).second);
}

// --- simulator validation ----------------------------------------------------

TEST(SimValidation, DegenerateInputsAreRejectedUpFront) {
  rt::SimOptions opts;
  EXPECT_FALSE(rt::try_simulate({}, opts).ok());
  EXPECT_FALSE(rt::try_simulate({{100, 0}}, opts).ok());       // zero period
  EXPECT_FALSE(rt::try_simulate({{-1, 100}}, opts).ok());      // negative wcet
  EXPECT_FALSE(rt::try_simulate({{10, 100, -5}}, opts).ok());  // negative sw
  EXPECT_THROW(rt::simulate({}, opts), std::invalid_argument);
  EXPECT_TRUE(rt::try_simulate({{10, 100}}, opts).ok());
  const auto err = rt::try_simulate({{100, 0, 0, 0, "bad"}}, opts);
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.error().message.find("bad"), std::string::npos);
}

TEST(SimValidation, TaskSetValidateCatchesDegeneracies) {
  rt::TaskSet ts;
  EXPECT_NE(ts.validate(), "");
  rt::Task t;
  t.name = "x";
  t.period = 100;
  t.configs.push_back({0, 50});
  ts.tasks.push_back(t);
  EXPECT_EQ(ts.validate(), "");
  ts.tasks[0].configs[0].area = 3;  // first config must be the sw config
  EXPECT_NE(ts.validate(), "");
}

}  // namespace
}  // namespace isex::robust
