// Simulation-vs-analysis validation: the Chapter 6 trace-driven fabric
// simulator must reproduce the analytic net gains exactly, and the Chapter 7
// reconfiguration-aware EDF simulator must confirm every analysis-accepted
// solution (the analytic per-job charge is the worst case of the
// save/restore platform).
#include <gtest/gtest.h>

#include <cmath>

#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/architectures.hpp"
#include "isex/reconfig/fabric_sim.hpp"
#include "isex/rtreconfig/algorithms.hpp"
#include "isex/rtreconfig/sim.hpp"

namespace isex {
namespace {

class FabricSimProperty : public ::testing::TestWithParam<int> {};

TEST_P(FabricSimProperty, MatchesAnalyticNetGain) {
  util::Rng gen(static_cast<std::uint64_t>(GetParam()) * 401 + 3);
  const auto p = reconfig::synthetic_problem(gen.uniform_int(5, 20), gen);
  util::Rng rng(7);
  for (const auto& s : {reconfig::iterative_partition(p, rng),
                        reconfig::greedy_partition(p),
                        reconfig::temporal_only_solution(p)}) {
    const auto sim = reconfig::simulate_fabric(p, s);
    EXPECT_NEAR(sim.net_gain, reconfig::net_gain(p, s), 1e-6);
    EXPECT_EQ(sim.reconfigurations, reconfig::count_reconfigurations(p, s));
    // Partial model agrees with its analytic counterpart too.
    const double rate = 3.0;
    const auto psim = reconfig::simulate_fabric(
        p, s, reconfig::FabricCostModel::kPartial, rate);
    EXPECT_NEAR(psim.net_gain, reconfig::partial_net_gain(p, s, rate), 1e-6);
  }
}

TEST_P(FabricSimProperty, ResidencyStatisticsAreConsistent) {
  util::Rng gen(static_cast<std::uint64_t>(GetParam()) * 409 + 11);
  const auto p = reconfig::synthetic_problem(8, gen);
  util::Rng rng(3);
  const auto s = reconfig::iterative_partition(p, rng);
  const auto sim = reconfig::simulate_fabric(p, s);
  long loads = 0, entries = 0;
  for (long x : sim.loads_per_config) loads += x;
  for (long x : sim.entries_per_config) entries += x;
  EXPECT_EQ(loads, sim.reconfigurations);
  // Every trace entry of a hardware loop is served.
  long hw_entries = 0;
  for (int l : p.trace)
    if (s.config[static_cast<std::size_t>(l)] >= 0) ++hw_entries;
  EXPECT_EQ(entries, hw_entries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricSimProperty, ::testing::Range(0, 12));

// --- Chapter 7 ---------------------------------------------------------------

rtreconfig::Problem rt_problem(util::Rng& rng, int n) {
  rtreconfig::Problem p;
  p.max_area = 100;
  p.reconfig_cost = rng.uniform_int(5, 30);
  for (int i = 0; i < n; ++i) {
    rtreconfig::TaskCis t;
    t.name = "T" + std::to_string(i);
    const double sw = rng.uniform_int(50, 300);
    t.period = std::floor(sw * rng.uniform_real(2.5, 5.0));
    t.versions.push_back({0, sw});
    double area = 0, cycles = sw;
    for (int j = 0; j < rng.uniform_int(1, 3); ++j) {
      area += rng.uniform_int(20, 70);
      cycles = std::floor(cycles * rng.uniform_real(0.6, 0.9));
      t.versions.push_back({area, cycles});
    }
    p.tasks.push_back(std::move(t));
  }
  return p;
}

class ReconfigSimProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReconfigSimProperty, AnalysisAcceptedSolutionsMeetDeadlines) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 419 + 7);
  const auto p = rt_problem(rng, rng.uniform_int(2, 5));
  const auto dp = rtreconfig::dp_partition(p);
  if (!dp.schedulable) return;  // nothing to validate
  rtreconfig::ReconfigSimOptions so;
  so.horizon = 2'000'000;
  const auto sim = rtreconfig::simulate_with_reconfig(p, dp, so);
  EXPECT_TRUE(sim.sched.all_met)
      << "analysis accepted a solution that misses deadlines (U="
      << dp.utilization << ")";
  // The analytic budget (one rho per hardware job) bounds the actual stalls
  // under the save/restore platform semantics.
  double budget = 0;
  if (dp.num_configs() >= 2)
    for (std::size_t i = 0; i < p.tasks.size(); ++i)
      if (dp.version[i] > 0)
        budget += p.reconfig_cost *
                  std::floor(static_cast<double>(so.horizon) /
                             p.tasks[i].period + 1);
  EXPECT_LE(sim.stall_cycles, budget + p.reconfig_cost /*initial load*/);
}

TEST_P(ReconfigSimProperty, SingleConfigurationReloadsAtMostOnce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 421 + 13);
  const auto p = rt_problem(rng, 4);
  const auto stat = rtreconfig::static_partition(p);
  rtreconfig::ReconfigSimOptions so;
  so.horizon = 500'000;
  const auto sim = rtreconfig::simulate_with_reconfig(p, stat, so);
  EXPECT_LE(sim.reloads, 1);  // the boot-time load only
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigSimProperty, ::testing::Range(0, 15));

TEST(ReconfigSim, RawFabricPaysMoreThanSaveRestore) {
  util::Rng rng(99);
  const auto p = rt_problem(rng, 4);
  const auto dp = rtreconfig::dp_partition(p);
  if (dp.num_configs() < 2) GTEST_SKIP() << "needs a multi-config solution";
  rtreconfig::ReconfigSimOptions save;
  save.horizon = 1'000'000;
  rtreconfig::ReconfigSimOptions raw = save;
  raw.resume_reloads = true;
  const auto s1 = rtreconfig::simulate_with_reconfig(p, dp, save);
  const auto s2 = rtreconfig::simulate_with_reconfig(p, dp, raw);
  EXPECT_GE(s2.stall_cycles, s1.stall_cycles);
}

}  // namespace
}  // namespace isex
