// Cell-library invariants and text-table formatting tests.
#include <gtest/gtest.h>

#include <sstream>

#include "isex/hw/estimate.hpp"
#include "isex/util/table.hpp"

namespace isex {
namespace {

TEST(CellLibrary, ValidOpsHavePositiveHardwareCosts) {
  const auto& lib = hw::CellLibrary::standard_018um();
  for (int i = 0; i < ir::kNumOpcodes; ++i) {
    const auto op = static_cast<ir::Opcode>(i);
    const auto& c = lib.cost(op);
    if (ir::is_valid_for_ci(op) && op != ir::Opcode::kConst) {
      EXPECT_GT(c.hw_latency_ns, 0) << ir::opcode_name(op);
      EXPECT_GT(c.area, 0) << ir::opcode_name(op);
    } else if (op != ir::Opcode::kCount) {
      EXPECT_DOUBLE_EQ(c.hw_latency_ns, 0) << ir::opcode_name(op);
      EXPECT_DOUBLE_EQ(c.area, 0) << ir::opcode_name(op);
    }
  }
}

TEST(CellLibrary, RelativeMagnitudesDriveTradeoffs) {
  const auto& lib = hw::CellLibrary::standard_018um();
  using ir::Opcode;
  // Multiplier >> adder >> logic, both in delay and area — the ordering the
  // paper's trade-off shapes come from.
  EXPECT_GT(lib.cost(Opcode::kMul).hw_latency_ns,
            2 * lib.cost(Opcode::kAdd).hw_latency_ns);
  EXPECT_GT(lib.cost(Opcode::kAdd).hw_latency_ns,
            2 * lib.cost(Opcode::kXor).hw_latency_ns);
  EXPECT_GT(lib.cost(Opcode::kMul).area, 10 * lib.cost(Opcode::kAdd).area);
  // The MAC fits one clock cycle (the thesis' latency unit).
  EXPECT_LE(lib.cost(Opcode::kMac).hw_latency_ns, lib.clock_period_ns());
  // Division is expensive in software (it is excluded from CFUs).
  EXPECT_GE(lib.cost(Opcode::kDiv).sw_cycles, 10);
}

TEST(CellLibrary, GateConversion) {
  EXPECT_DOUBLE_EQ(hw::CellLibrary::gates(4.0), 1000.0);
}

TEST(CellLibrary, ConservativeModelShrinksGainsAndGrowsArea) {
  const auto& ideal = hw::CellLibrary::standard_018um();
  const auto& cons = hw::CellLibrary::conservative_018um();
  EXPECT_EQ(ideal.issue_overhead_cycles(), 0);
  EXPECT_EQ(cons.issue_overhead_cycles(), 1);
  EXPECT_GT(cons.area_overhead_factor(), 1.0);
  // On a 4-add chain: idealized gain 3 (4 sw - 1 hw), conservative gain 2.
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  auto prev = d.add(ir::Opcode::kAdd, {i, i});
  auto s = d.empty_set();
  s.set(static_cast<std::size_t>(prev));
  for (int k = 0; k < 3; ++k) {
    prev = d.add(ir::Opcode::kAdd, {prev, i});
    s.set(static_cast<std::size_t>(prev));
  }
  d.mark_live_out(prev);
  const auto e_ideal = hw::estimate(d, s, ideal);
  const auto e_cons = hw::estimate(d, s, cons);
  EXPECT_DOUBLE_EQ(e_ideal.gain_per_exec, 3);
  EXPECT_DOUBLE_EQ(e_cons.gain_per_exec, 2);
  EXPECT_NEAR(e_cons.area, 1.6 * e_ideal.area, 1e-9);
}

TEST(Table, AlignedOutput) {
  util::Table t({"name", "value"});
  t.row().cell("x").cell(42);
  t.row().cell("longer").cell(3.5, 1);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);  // header rule
}

TEST(Table, CsvOutput) {
  util::Table t({"a", "b"});
  t.row().cell(1).cell(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace isex
