// Code-generation tests: evaluation semantics, the convexity <=>
// atomic-schedulability equivalence, functional equivalence of customized
// schedules, and the code-size reduction claim.
#include <gtest/gtest.h>

#include "isex/codegen/schedule.hpp"
#include "isex/ise/enumerate.hpp"
#include "isex/mlgp/mlgp.hpp"
#include "isex/select/config_curve.hpp"
#include "test_util.hpp"

namespace isex::codegen {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

TEST(Evaluate, OpcodeSemantics) {
  ir::Dfg d;
  const auto a = d.add(ir::Opcode::kInput);
  const auto b = d.add(ir::Opcode::kInput);
  const auto sum = d.add(ir::Opcode::kAdd, {a, b});
  const auto diff = d.add(ir::Opcode::kSub, {a, b});
  const auto prod = d.add(ir::Opcode::kMul, {a, b});
  const auto shl = d.add(ir::Opcode::kShl, {a, b});
  const auto cmp = d.add(ir::Opcode::kCmp, {a, b});
  const auto sel = d.add(ir::Opcode::kSelect, {cmp, sum, diff});
  const auto values = ir::evaluate(d, {6, 3});
  EXPECT_EQ(values[static_cast<std::size_t>(sum)], 9);
  EXPECT_EQ(values[static_cast<std::size_t>(diff)], 3);
  EXPECT_EQ(values[static_cast<std::size_t>(prod)], 18);
  EXPECT_EQ(values[static_cast<std::size_t>(shl)], 48);
  EXPECT_EQ(values[static_cast<std::size_t>(cmp)], 0);   // 6 < 3 is false
  EXPECT_EQ(values[static_cast<std::size_t>(sel)], 3);   // picks diff
}

TEST(Evaluate, DeterministicRomAndConsts) {
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  const auto ld = d.add(ir::Opcode::kLoad, {i});
  const auto c = d.add(ir::Opcode::kConst);
  d.mark_live_out(d.add(ir::Opcode::kXor, {ld, c}));
  const auto v1 = ir::evaluate(d, {42});
  const auto v2 = ir::evaluate(d, {42});
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(v1[1], ir::pseudo_rom(42));
}

TEST(Lower, RejectsNonConvexCi) {
  // add -> mul -> shl; {add, shl} skips the mul in the middle.
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  const auto a = d.add(ir::Opcode::kAdd, {i, i});
  const auto m = d.add(ir::Opcode::kMul, {a, i});
  const auto s = d.add(ir::Opcode::kShl, {m, i});
  d.mark_live_out(s);
  auto bad = d.empty_set();
  bad.set(static_cast<std::size_t>(a));
  bad.set(static_cast<std::size_t>(s));
  EXPECT_THROW(lower(d, {bad}), std::invalid_argument);
  auto good = bad;
  good.set(static_cast<std::size_t>(m));
  EXPECT_NO_THROW(lower(d, {good}));
}

TEST(Lower, RejectsOverlappingCis) {
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  const auto a = d.add(ir::Opcode::kAdd, {i, i});
  const auto b = d.add(ir::Opcode::kXor, {a, i});
  d.mark_live_out(b);
  auto s1 = d.empty_set();
  s1.set(static_cast<std::size_t>(a));
  s1.set(static_cast<std::size_t>(b));
  auto s2 = d.empty_set();
  s2.set(static_cast<std::size_t>(b));
  EXPECT_THROW(lower(d, {s1, s2}), std::invalid_argument);
}

// Property: convexity is exactly atomic schedulability.
class ConvexityScheduling : public ::testing::TestWithParam<int> {};

TEST_P(ConvexityScheduling, ConvexIffLowerable) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 31);
  const ir::Dfg d = isex::testing::random_dfg(rng, 3, 16, 0.1);
  // Random node subsets of valid ops.
  for (int trial = 0; trial < 40; ++trial) {
    auto s = d.empty_set();
    for (int v = 0; v < d.num_nodes(); ++v)
      if (ir::is_valid_for_ci(d.node(v).op) &&
          d.node(v).op != ir::Opcode::kConst && rng.chance(0.3))
        s.set(static_cast<std::size_t>(v));
    if (s.none()) continue;
    const bool convex = d.is_convex(s);
    bool lowered = true;
    try {
      lower(d, {s});
    } catch (const std::invalid_argument&) {
      lowered = false;
    }
    EXPECT_EQ(convex, lowered);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvexityScheduling, ::testing::Range(0, 12));

// Property: a customized schedule computes exactly the software values.
class FunctionalEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FunctionalEquivalence, CustomizedScheduleMatchesEvaluate) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 277 + 37);
  const ir::Dfg d = isex::testing::random_dfg(rng, 4, 60, 0.08);
  // Use MLGP's disjoint CIs as the selection.
  util::Rng algo(5);
  const auto cis = mlgp::generate_for_block(d, lib(), mlgp::MlgpOptions{}, algo);
  std::vector<util::Bitset> sets;
  for (const auto& c : cis) sets.push_back(c.nodes);
  const auto block = lower(d, sets);

  std::vector<std::int64_t> inputs;
  for (int k = 0; k < 8; ++k) inputs.push_back(rng.uniform_i64(-1000, 1000));
  const auto sw = ir::evaluate(d, inputs);
  const auto hw = execute(d, block, inputs);
  for (int v = 0; v < d.num_nodes(); ++v)
    if (ir::produces_value(d.node(v).op))
      EXPECT_EQ(sw[static_cast<std::size_t>(v)],
                hw[static_cast<std::size_t>(v)])
          << "node " << v;
}

TEST_P(FunctionalEquivalence, CodeSizeShrinks) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 281 + 41);
  const ir::Dfg d = isex::testing::random_dfg(rng, 4, 50, 0.05);
  util::Rng algo(5);
  const auto cis = mlgp::generate_for_block(d, lib(), mlgp::MlgpOptions{}, algo);
  std::vector<util::Bitset> sets;
  std::size_t packed = 0;
  for (const auto& c : cis) {
    sets.push_back(c.nodes);
    packed += c.nodes.count();
  }
  const auto plain = lower(d, {});
  const auto custom = lower(d, sets);
  EXPECT_EQ(custom.length(), plain.length() - packed + sets.size());
  if (!sets.empty()) EXPECT_LT(custom.length(), plain.length());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FunctionalEquivalence, ::testing::Range(0, 12));

}  // namespace
}  // namespace isex::codegen
