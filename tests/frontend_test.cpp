// The untrusted-binary frontend, layer by layer: the total RV32I decoder
// round-trips against the in-tree encoder over every format; the bounded
// ELF32 reader accepts the fixture images and rejects lying headers with
// typed errors; basic-block recovery cuts crafted streams at terminators,
// leaders and illegal words; the lifter maps register dataflow onto the
// calibrated op alphabet (live-ins as kInput, known addresses as kConst,
// sub-word memory as kSext, idioms like xori-with-minus-one as kNot); every
// lifted program passes certify's independent checkers; and the lifted op
// mixes of the five hand-assembled MiBench fixtures stay within tolerance
// of their calibrated synthetic counterparts, closing the loop between the
// binary frontend and the generator-based evaluation the rest of the
// repository runs on.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "isex/certify/ci.hpp"
#include "isex/certify/dfg.hpp"
#include "isex/frontend/cfg.hpp"
#include "isex/frontend/elf.hpp"
#include "isex/frontend/fixtures.hpp"
#include "isex/frontend/lift.hpp"
#include "isex/frontend/rv32i.hpp"
#include "isex/hw/cell_library.hpp"
#include "isex/ise/enumerate.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/serve/json.hpp"
#include "isex/serve/server.hpp"
#include "isex/util/rng.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::frontend {
namespace {

using rv::Inst;
using rv::Op;

// --- decoder / encoder round trips ------------------------------------------

TEST(Rv32iDecode, GoldenWords) {
  // Assembler-verified encodings, one per major opcode family.
  EXPECT_EQ(rv::decode(0x00500093).op, Op::kAddi);  // addi x1, x0, 5
  EXPECT_EQ(rv::decode(0x00500093).rd, 1);
  EXPECT_EQ(rv::decode(0x00500093).imm, 5);
  EXPECT_EQ(rv::decode(0x00412503).op, Op::kLw);    // lw x10, 4(x2)
  EXPECT_EQ(rv::decode(0x00412503).rs1, 2);
  EXPECT_EQ(rv::decode(0x00412503).imm, 4);
  EXPECT_EQ(rv::decode(0x008000ef).op, Op::kJal);   // jal x1, +8
  EXPECT_EQ(rv::decode(0x008000ef).imm, 8);
  EXPECT_EQ(rv::decode(0x00000073).op, Op::kEcall);
  EXPECT_EQ(rv::decode(0x00100073).op, Op::kEbreak);
  EXPECT_EQ(rv::decode(0x123452b7).op, Op::kLui);   // lui x5, 0x12345
  EXPECT_EQ(rv::decode(0x123452b7).imm, 0x12345);
  EXPECT_EQ(rv::decode(0x40b50533).op, Op::kSub);   // sub x10, x10, x11
}

TEST(Rv32iDecode, TotalOverRandomWords) {
  // decode() is a total function: every word yields an Inst with the raw
  // word preserved, and legal decodes re-encode to the identical word.
  util::Rng rng(0xDEC0DE);
  int legal = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.uniform_i64(0, 0xffffffffll));
    const Inst d = rv::decode(w);
    EXPECT_EQ(d.raw, w);
    if (d.op != Op::kIllegal) {
      ++legal;
      EXPECT_EQ(rv::encode(d), w) << "word 0x" << std::hex << w;
    }
  }
  EXPECT_GT(legal, 0);
}

TEST(Rv32iDecode, CompressedAndWideEncodingsAreIllegal) {
  util::Rng rng(0xC0);
  for (int i = 0; i < 2000; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.uniform_i64(0, 0xffffffffll));
    if ((w & 0x3u) != 0x3u) {  // 16-bit compressed space
      EXPECT_EQ(rv::decode(w).op, Op::kIllegal);
    }
    if ((w & 0x1cu) == 0x1cu) {  // >= 48-bit encodings
      EXPECT_EQ(rv::decode(w).op, Op::kIllegal);
    }
  }
}

TEST(Rv32iEncode, BuilderRoundTripEveryFormat) {
  // One representative per format, swept over registers and immediates.
  util::Rng rng(0x5EED);
  std::vector<Inst> insts;
  for (int i = 0; i < 2000; ++i) {
    const int rd = rng.uniform_int(0, 31);
    const int rs1 = rng.uniform_int(0, 31);
    const int rs2 = rng.uniform_int(0, 31);
    const std::int32_t imm12 = rng.uniform_int(-2048, 2047);
    const std::int32_t shamt = rng.uniform_int(0, 31);
    const std::int32_t imm20 = rng.uniform_int(-(1 << 19), (1 << 19) - 1);
    const std::int32_t boff = rng.uniform_int(-2048, 2047) * 2;   // B: ±4K even
    const std::int32_t joff = rng.uniform_int(-(1 << 19), (1 << 19) - 1) * 2;
    insts = {
        rv::lui(rd, imm20),
        rv::auipc(rd, imm20),
        rv::jal(rd, joff),
        rv::jalr(rd, rs1, imm12),
        rv::branch(Op::kBeq, rs1, rs2, boff),
        rv::branch(Op::kBgeu, rs1, rs2, boff),
        rv::load(Op::kLw, rd, rs1, imm12),
        rv::load(Op::kLbu, rd, rs1, imm12),
        rv::store(Op::kSw, rs2, rs1, imm12),
        rv::store(Op::kSb, rs2, rs1, imm12),
        rv::op_imm(Op::kAddi, rd, rs1, imm12),
        rv::op_imm(Op::kSlli, rd, rs1, shamt),
        rv::op_imm(Op::kSrai, rd, rs1, shamt),
        rv::op_reg(Op::kSub, rd, rs1, rs2),
        rv::op_reg(Op::kSltu, rd, rs1, rs2),
        rv::ecall(),
        rv::ebreak(),
    };
    for (const Inst& in : insts) {
      const Inst back = rv::decode(rv::encode(in));
      EXPECT_EQ(back, in) << rv::op_name(in.op);
    }
  }
}

TEST(Rv32iEncode, FixtureWordsRoundTrip) {
  for (const Fixture& f : fixtures()) {
    const auto words = encode_all(f.insts);
    ASSERT_EQ(words.size(), f.insts.size());
    for (std::size_t i = 0; i < words.size(); ++i)
      EXPECT_EQ(rv::decode(words[i]), f.insts[i])
          << f.name << " word " << i;
  }
}

// --- bounded ELF32 reader ----------------------------------------------------

TEST(Elf, FixtureImagesParse) {
  for (const Fixture& f : fixtures()) {
    const ElfResult r = parse_elf32(f.elf, FrontendLimits{});
    ASSERT_TRUE(std::holds_alternative<ElfImage>(r))
        << f.name << ": " << std::get<FrontendError>(r).render();
    const ElfImage& img = std::get<ElfImage>(r);
    EXPECT_EQ(img.machine, kMachineRiscv);
    ASSERT_EQ(img.exec.size(), 1u);
    EXPECT_EQ(img.exec[0].vaddr, 0x10000u);
    EXPECT_EQ(img.exec[0].bytes.size(), f.insts.size() * 4);
  }
}

FrontendErrorCode code_of(const ElfResult& r) {
  return std::get<FrontendError>(r).code;
}

TEST(Elf, TypedRejections) {
  const FrontendLimits lim;
  const std::vector<std::uint8_t>& good = fixtures()[0].elf;

  EXPECT_EQ(code_of(parse_elf32({}, lim)), FrontendErrorCode::kNotElf);

  std::vector<std::uint8_t> bad = good;
  bad[0] = 0x7e;  // magic
  EXPECT_EQ(code_of(parse_elf32(bad, lim)), FrontendErrorCode::kNotElf);

  bad = good;
  bad[4] = 2;  // ELFCLASS64
  EXPECT_EQ(code_of(parse_elf32(bad, lim)), FrontendErrorCode::kNotElf);

  bad = good;
  bad[18] = 0x3e;  // EM_X86_64
  EXPECT_EQ(code_of(parse_elf32(bad, lim)), FrontendErrorCode::kNotElf);

  // Section size stretched past the end of the file: the executable range
  // check must reject before any byte past the span is touched.
  bad = good;
  {
    const std::uint32_t shoff = static_cast<std::uint32_t>(
        bad[32] | (bad[33] << 8) | (bad[34] << 16) |
        (static_cast<std::uint32_t>(bad[35]) << 24));
    const std::uint32_t text_sh = shoff + 40;  // entry 1
    bad[text_sh + 20] = 0xff;                  // sh_size low byte
    bad[text_sh + 21] = 0xff;
    bad[text_sh + 22] = 0x0f;
  }
  EXPECT_EQ(code_of(parse_elf32(bad, lim)), FrontendErrorCode::kBadElf);

  FrontendLimits tiny;
  tiny.max_file_bytes = 16;
  EXPECT_EQ(code_of(parse_elf32(good, tiny)), FrontendErrorCode::kTooLarge);

  tiny = FrontendLimits{};
  tiny.max_text_bytes = 4;
  EXPECT_EQ(code_of(parse_elf32(good, tiny)), FrontendErrorCode::kTooLarge);
}

TEST(Elf, SegmentFallbackWhenSectionTableLies) {
  // Corrupt the section table offset: the reader must fall back to the
  // PT_LOAD program header and still find the code.
  std::vector<std::uint8_t> img = fixtures()[0].elf;
  img[32] = 0xff;  // e_shoff -> far past the file
  img[33] = 0xff;
  img[34] = 0xff;
  const ElfResult r = parse_elf32(img, FrontendLimits{});
  ASSERT_TRUE(std::holds_alternative<ElfImage>(r))
      << std::get<FrontendError>(r).render();
  EXPECT_EQ(std::get<ElfImage>(r).exec.size(), 1u);
}

// --- basic-block recovery ----------------------------------------------------

Cfg must_recover(const std::vector<Inst>& insts, std::uint32_t vaddr = 0x1000) {
  const auto words = encode_all(insts);
  std::vector<std::uint8_t> bytes;
  for (const std::uint32_t w : words)
    for (int b = 0; b < 4; ++b)
      bytes.push_back(static_cast<std::uint8_t>(w >> (8 * b)));
  ElfImage img;
  img.machine = kMachineRiscv;
  img.exec.push_back(ExecSpan{vaddr, 0, bytes});
  CfgResult r = recover_cfg(img, FrontendLimits{}, nullptr);
  // bytes dies with this frame; copy out the blocks (they hold decoded
  // Insts by value, not spans).
  EXPECT_TRUE(std::holds_alternative<Cfg>(r));
  return std::get<Cfg>(r);
}

TEST(CfgRecovery, ForwardBranchSplitsAtTarget) {
  // addi; beq +8 (to index 3); addi; addi; jalr-ret
  std::vector<Inst> v;
  v.push_back(rv::op_imm(Op::kAddi, 5, 0, 1));
  v.push_back(rv::branch(Op::kBeq, 5, 0, 8));  // target = index 3
  v.push_back(rv::op_imm(Op::kAddi, 6, 5, 2));
  v.push_back(rv::op_imm(Op::kAddi, 7, 6, 3));
  v.push_back(rv::jalr(0, 1, 0));
  const Cfg cfg = must_recover(v);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  EXPECT_EQ(cfg.blocks[0].insts.size(), 2u);   // addi + beq
  EXPECT_TRUE(cfg.blocks[0].has_target);
  EXPECT_EQ(cfg.blocks[0].target, 0x1000u + 12);
  EXPECT_TRUE(cfg.blocks[0].has_fall_through);
  EXPECT_EQ(cfg.blocks[1].insts.size(), 1u);   // the skipped addi
  EXPECT_EQ(cfg.blocks[2].insts.size(), 2u);   // leader at target + ret
  EXPECT_FALSE(cfg.blocks[2].has_fall_through);
}

TEST(CfgRecovery, BackwardBranchMakesLoopHead) {
  const Cfg cfg = must_recover(fixtures()[0].insts, 0x10000);
  ASSERT_GE(cfg.blocks.size(), 2u);
  EXPECT_EQ(cfg.blocks[0].start, 0x10000u);
  EXPECT_TRUE(cfg.blocks[0].has_target);
  EXPECT_EQ(cfg.blocks[0].target, 0x10000u);  // loops to itself
  EXPECT_EQ(cfg.illegal_instructions, 0);
}

TEST(CfgRecovery, IllegalWordTerminatesBlock) {
  std::vector<Inst> v;
  v.push_back(rv::op_imm(Op::kAddi, 5, 0, 1));
  Inst ill;
  ill.op = Op::kIllegal;
  ill.raw = 0xffffffff;  // all-ones: not a valid encoding
  v.push_back(ill);
  v.push_back(rv::op_imm(Op::kAddi, 6, 0, 2));
  v.push_back(rv::jalr(0, 1, 0));
  const Cfg cfg = must_recover(v);
  ASSERT_EQ(cfg.blocks.size(), 2u);
  EXPECT_EQ(cfg.blocks[0].insts.size(), 2u);
  EXPECT_FALSE(cfg.blocks[0].has_fall_through);  // data after it, maybe
  EXPECT_EQ(cfg.illegal_instructions, 1);
}

TEST(CfgRecovery, JalDoesNotFallThrough) {
  std::vector<Inst> v;
  v.push_back(rv::jal(0, 8));
  v.push_back(rv::op_imm(Op::kAddi, 5, 0, 1));
  v.push_back(rv::jalr(0, 1, 0));
  const Cfg cfg = must_recover(v);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  EXPECT_FALSE(cfg.blocks[0].has_fall_through);
  EXPECT_TRUE(cfg.blocks[0].has_target);
}

TEST(CfgRecovery, InstructionLimitIsTyped) {
  FrontendLimits lim;
  lim.max_instructions = 4;
  std::vector<std::uint8_t> bytes(40, 0x13);  // 10 addi-ish words
  ElfImage img;
  img.exec.push_back(ExecSpan{0, 0, bytes});
  const CfgResult r = recover_cfg(img, lim, nullptr);
  ASSERT_TRUE(std::holds_alternative<FrontendError>(r));
  EXPECT_EQ(std::get<FrontendError>(r).code, FrontendErrorCode::kTooLarge);
}

// --- the lifter --------------------------------------------------------------

Lifted must_lift(const std::vector<Inst>& insts) {
  const auto words = encode_all(insts);
  std::vector<std::uint8_t> bytes;
  for (const std::uint32_t w : words)
    for (int b = 0; b < 4; ++b)
      bytes.push_back(static_cast<std::uint8_t>(w >> (8 * b)));
  LiftResult r = lift_raw(bytes, 0x1000, "t", LiftOptions{});
  EXPECT_TRUE(std::holds_alternative<Lifted>(r))
      << std::get<FrontendError>(r).render();
  return std::move(std::get<Lifted>(r));
}

long count_op(const ir::Program& p, ir::Opcode op) {
  long n = 0;
  for (const auto& b : p.blocks())
    for (const auto& nd : b.dfg.nodes())
      if (nd.op == op) ++n;
  return n;
}

TEST(Lift, MoveAliasesWithoutANode) {
  // addi x2, x1, 0 is a register move: the lifter aliases x2 to x1's node
  // (a live-in kInput) and the block gains no computation node.
  const Lifted L = must_lift({rv::op_imm(Op::kAddi, 2, 1, 0),
                              rv::jalr(0, 1, 0)});
  const ir::Dfg& d = L.program.block(0).dfg;
  EXPECT_EQ(count_op(L.program, ir::Opcode::kAdd), 0);
  bool input_live_out = false;
  for (const auto& nd : d.nodes())
    if (nd.op == ir::Opcode::kInput && nd.live_out) input_live_out = true;
  EXPECT_TRUE(input_live_out);
}

TEST(Lift, XoriMinusOneIsNot) {
  const Lifted L = must_lift({rv::op_imm(Op::kXori, 2, 1, -1),
                              rv::jalr(0, 1, 0)});
  EXPECT_EQ(count_op(L.program, ir::Opcode::kNot), 1);
  EXPECT_EQ(count_op(L.program, ir::Opcode::kXor), 0);
}

TEST(Lift, SubWordLoadGetsSext) {
  const Lifted L = must_lift({rv::load(Op::kLb, 2, 1, 4),
                              rv::load(Op::kLw, 3, 1, 8),
                              rv::jalr(0, 1, 0)});
  EXPECT_EQ(count_op(L.program, ir::Opcode::kLoad), 2);
  EXPECT_EQ(count_op(L.program, ir::Opcode::kSext), 1);  // only the lb
}

TEST(Lift, BranchLiftsToCmpFeedingBranch) {
  const Lifted L = must_lift({rv::branch(Op::kBlt, 1, 2, 8),
                              rv::op_imm(Op::kAddi, 5, 0, 1),
                              rv::jalr(0, 1, 0)});
  EXPECT_EQ(count_op(L.program, ir::Opcode::kCmp), 1);
  EXPECT_EQ(count_op(L.program, ir::Opcode::kBranch), 1);
  const ir::Dfg& d = L.program.block(0).dfg;
  for (const auto& nd : d.nodes())
    if (nd.op == ir::Opcode::kBranch) {
      ASSERT_EQ(nd.operands.size(), 1u);
      EXPECT_EQ(d.node(nd.operands[0]).op, ir::Opcode::kCmp);
    }
}

TEST(Lift, LuiAddiMaterializesConstantsOnly) {
  // lui x5, 0x12345 ; addi x5, x5, 0x678: the classic 32-bit constant
  // idiom. LUI's value is known, so the addi folds to add(const, const) --
  // still constant-fed, with no kInput anywhere.
  const Lifted L = must_lift({rv::lui(5, 0x12345),
                              rv::op_imm(Op::kAddi, 5, 5, 0x678),
                              rv::jalr(0, 5, 0)});
  EXPECT_EQ(count_op(L.program, ir::Opcode::kInput), 0);
  EXPECT_GE(count_op(L.program, ir::Opcode::kConst), 1);
}

TEST(Lift, BudgetExhaustionIsTyped) {
  robust::Budget b;
  b.set_node_budget(2);
  LiftOptions lo;
  lo.budget = &b;
  const LiftResult r = lift_elf(fixtures()[0].elf, "t", lo);
  ASSERT_TRUE(std::holds_alternative<FrontendError>(r));
  EXPECT_EQ(std::get<FrontendError>(r).code, FrontendErrorCode::kBudget);
}

TEST(Lift, EveryFixtureCertifiesAndFeedsTheSolvers) {
  // The acceptance contract: each fixture lifts, passes the independent
  // well-formedness witness, its per-block enumeration pools certify as
  // CI-legal (uncapped, i.e. --paranoid strength), and the selection stage
  // builds a non-trivial configuration curve.
  const auto& lib = hw::CellLibrary::standard_018um();
  for (const Fixture& f : fixtures()) {
    const LiftResult r = lift_elf(f.elf, f.name, LiftOptions{});
    ASSERT_TRUE(std::holds_alternative<Lifted>(r))
        << f.name << ": " << std::get<FrontendError>(r).render();
    const Lifted& L = std::get<Lifted>(r);
    EXPECT_EQ(L.stats.illegal_instructions, 0) << f.name;
    EXPECT_EQ(L.stats.decoded_instructions,
              static_cast<long>(f.insts.size()))
        << f.name;

    const auto wf = certify::check_program(L.program);
    EXPECT_TRUE(wf.ok()) << f.name << ": " << wf.summary();

    ise::EnumOptions eo;
    eo.max_candidates = 20000;
    certify::PoolCheckOptions po;
    po.max_full_checks = -1;
    for (int b = 0; b < L.program.num_blocks(); ++b) {
      const ir::Dfg& dfg = L.program.block(b).dfg;
      const auto pool = ise::enumerate_candidates(dfg, lib, eo, b, 1);
      const auto rep =
          certify::check_candidate_pool(dfg, lib, eo.constraints, pool, po);
      EXPECT_TRUE(rep.ok()) << f.name << " block " << b << ": "
                            << rep.summary();
    }

    const auto cost = ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); });
    const auto counts = L.program.wcet_counts(cost);
    const auto curve = select::build_config_curve(L.program, counts, lib,
                                                  select::CurveOptions{});
    EXPECT_GE(curve.points.size(), 2u)
        << f.name << ": no customization headroom found";
    EXPECT_LT(curve.best_cycles(), curve.base_cycles()) << f.name;
  }
}

// --- op-mix cross-validation against the calibrated generators ---------------

/// Share of each op category over a program's computation-relevant nodes.
/// Categories, not raw opcodes: the generators use kRotl and kSelect where
/// RV32I spells rotation as shl/shr/or and selection as the branchless
/// mask idiom, so raw opcode counts are incommensurable by construction.
std::array<double, 5> category_shares(const ir::Program& p) {
  // 0 arith, 1 logic, 2 shift, 3 cmp/select/sext, 4 memory
  std::array<double, 5> n{};
  double total = 0;
  for (const auto& b : p.blocks()) {
    for (const auto& nd : b.dfg.nodes()) {
      int cat = -1;
      switch (nd.op) {
        case ir::Opcode::kAdd: case ir::Opcode::kSub:
        case ir::Opcode::kMul: case ir::Opcode::kMac:
          cat = 0; break;
        case ir::Opcode::kAnd: case ir::Opcode::kOr:
        case ir::Opcode::kXor: case ir::Opcode::kNot:
          cat = 1; break;
        case ir::Opcode::kShl: case ir::Opcode::kShr: case ir::Opcode::kRotl:
          cat = 2; break;
        case ir::Opcode::kCmp: case ir::Opcode::kSelect:
        case ir::Opcode::kSext:
          cat = 3; break;
        case ir::Opcode::kLoad: case ir::Opcode::kStore:
          cat = 4; break;
        default:
          break;  // leaves and control: not part of the mix
      }
      if (cat < 0) continue;
      n[static_cast<std::size_t>(cat)] += 1;
      total += 1;
    }
  }
  if (total > 0)
    for (double& v : n) v /= total;
  return n;
}

TEST(Lift, FixtureOpMixesMatchCalibratedGenerators) {
  for (const Fixture& f : fixtures()) {
    const LiftResult r = lift_elf(f.elf, f.name, LiftOptions{});
    ASSERT_TRUE(std::holds_alternative<Lifted>(r)) << f.name;
    const auto lifted = category_shares(std::get<Lifted>(r).program);
    const auto synth =
        category_shares(workloads::make_benchmark(f.reference));
    double l1 = 0;
    for (std::size_t c = 0; c < lifted.size(); ++c)
      l1 += lifted[c] > synth[c] ? lifted[c] - synth[c] : synth[c] - lifted[c];
    // L1 distance over category shares is in [0, 2]; hand-assembled inner
    // loops vs whole calibrated kernels agree to well under half the range.
    EXPECT_LT(l1, 0.75) << f.name << " vs " << f.reference
                        << ": lifted {" << lifted[0] << "," << lifted[1] << ","
                        << lifted[2] << "," << lifted[3] << "," << lifted[4]
                        << "} synth {" << synth[0] << "," << synth[1] << ","
                        << synth[2] << "," << synth[3] << "," << synth[4]
                        << "}";
    // The dominant category of the synthetic reference must be a real
    // presence (>= 10%) in the lifted mix: the lifter did not lose the
    // workload's defining idiom.
    std::size_t dom = 0;
    for (std::size_t c = 1; c < synth.size(); ++c)
      if (synth[c] > synth[dom]) dom = c;
    EXPECT_GE(lifted[dom], 0.10) << f.name << ": reference-dominant category "
                                 << dom << " is missing from the lifted mix";
  }
}

// --- serve ingestion of a lifted block ---------------------------------------

TEST(Lift, LiftedBlockFeedsServe) {
  // Render the hottest lifted block of the crc32 fixture in serve's inline
  // DFG format and run a real select request over it: the lifted frontend
  // output is a first-class citizen of the service pipeline.
  const LiftResult r = lift_elf(fixtures()[0].elf, "crc32", LiftOptions{});
  ASSERT_TRUE(std::holds_alternative<Lifted>(r));
  const ir::Program& prog = std::get<Lifted>(r).program;
  int hot = 0;
  for (int b = 1; b < prog.num_blocks(); ++b)
    if (prog.block(b).dfg.num_nodes() > prog.block(hot).dfg.num_nodes())
      hot = b;
  const ir::Dfg& dfg = prog.block(hot).dfg;
  std::string nodes;
  for (int i = 0; i < dfg.num_nodes(); ++i) {
    const ir::Node& nd = dfg.node(i);
    if (i > 0) nodes += ",";
    nodes += "{\"op\":\"" + std::string(ir::opcode_name(nd.op)) + "\"";
    if (!nd.operands.empty()) {
      nodes += ",\"in\":[";
      for (std::size_t j = 0; j < nd.operands.size(); ++j)
        nodes += (j > 0 ? "," : "") + std::to_string(nd.operands[j]);
      nodes += "]";
    }
    nodes += ",\"out\":";
    nodes += nd.live_out ? "true" : "false";
    nodes += "}";
  }
  const std::string req =
      "{\"id\":\"lift1\",\"cmd\":\"select\",\"area_budget\":8,"
      "\"tasks\":[{\"name\":\"lifted_crc32\",\"period\":10000,\"dfg\":[" +
      nodes + "]}],\"node_budget\":200000}";
  serve::Server server{serve::ServerOptions{}};
  const std::string resp = server.handle_line(req);
  const serve::JsonParseResult parsed =
      serve::json_parse(resp, serve::JsonLimits{});
  ASSERT_TRUE(parsed.ok()) << resp;
  const serve::Json* ok = parsed.value.find("ok");
  ASSERT_NE(ok, nullptr) << resp;
  EXPECT_TRUE(ok->as_bool()) << resp;
}

// --- certify::check_dfg is a real checker ------------------------------------

TEST(CertifyDfg, AcceptsWellFormedRejectsBroken) {
  ir::Dfg good;
  const auto a = good.add(ir::Opcode::kInput);
  const auto b = good.add(ir::Opcode::kConst);
  const auto c = good.add(ir::Opcode::kAdd, {a, b});
  good.mark_live_out(c);
  EXPECT_TRUE(certify::check_dfg(good).ok());

  // Dfg::add's own guards make ill-formed graphs unbuildable through the
  // public API, which is exactly why certify re-checks from the raw nodes:
  // corrupt a copy through the one mutable surface (live_out on a
  // non-value node) and via a hand-built transpose violation.
  ir::Dfg bad;
  const auto x = bad.add(ir::Opcode::kInput);
  const auto st = bad.add(ir::Opcode::kStore, {x});
  bad.mark_live_out(st);  // stores produce no value
  const auto rep = certify::check_dfg(bad);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.violations.front().check, "dfg.live_out");
}

}  // namespace
}  // namespace isex::frontend
