// Tests for disconnected two-component candidates and the hardware
// estimation invariants they rely on.
#include <gtest/gtest.h>

#include <set>

#include "isex/ise/enumerate.hpp"
#include "test_util.hpp"

namespace isex::ise {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

/// Two independent MAC-ish chains in one block.
ir::Dfg two_chains() {
  ir::Dfg d;
  const auto a = d.add(ir::Opcode::kInput);
  const auto b = d.add(ir::Opcode::kInput);
  const auto c = d.add(ir::Opcode::kInput);
  const auto e = d.add(ir::Opcode::kInput);
  const auto m1 = d.add(ir::Opcode::kMul, {a, b});
  const auto s1 = d.add(ir::Opcode::kAdd, {m1, a});
  const auto m2 = d.add(ir::Opcode::kMul, {c, e});
  const auto s2 = d.add(ir::Opcode::kAdd, {m2, c});
  d.mark_live_out(s1);
  d.mark_live_out(s2);
  return d;
}

TEST(Disconnected, FusesIndependentChains) {
  const ir::Dfg d = two_chains();
  EnumOptions opts;
  const auto connected = enumerate_candidates(d, lib(), opts);
  const auto pairs =
      enumerate_disconnected(d, lib(), connected, opts.constraints);
  ASSERT_FALSE(pairs.empty());
  // The best pair covers both full chains: 4 inputs, 2 outputs, legal.
  const Candidate* best = nullptr;
  for (const auto& p : pairs)
    if (!best || p.est.gain_per_exec > best->est.gain_per_exec) best = &p;
  EXPECT_EQ(best->nodes.count(), 4u);
  EXPECT_EQ(best->num_inputs, 4);
  EXPECT_EQ(best->num_outputs, 2);
  EXPECT_TRUE(is_legal(d, best->nodes, opts.constraints));
}

TEST(Disconnected, ParallelLatencyIsMaxNotSum) {
  const ir::Dfg d = two_chains();
  auto chain1 = d.empty_set();
  chain1.set(4);
  chain1.set(5);
  auto chain2 = d.empty_set();
  chain2.set(6);
  chain2.set(7);
  auto both = chain1;
  both |= chain2;
  const auto e1 = hw::estimate(d, chain1, lib());
  const auto e2 = hw::estimate(d, chain2, lib());
  const auto eb = hw::estimate(d, both, lib());
  EXPECT_DOUBLE_EQ(eb.latency_ns, std::max(e1.latency_ns, e2.latency_ns));
  EXPECT_DOUBLE_EQ(eb.sw_cycles, e1.sw_cycles + e2.sw_cycles);
  EXPECT_DOUBLE_EQ(eb.area, e1.area + e2.area);
  // The fused instruction strictly beats the two separate ones in cycles.
  EXPECT_GT(eb.gain_per_exec, e1.gain_per_exec + e2.gain_per_exec - 1);
}

TEST(Disconnected, RejectsDependentComponents) {
  // chain2 consumes chain1's output: fusing them is a *connected* candidate,
  // not a disconnected pair.
  ir::Dfg d;
  const auto a = d.add(ir::Opcode::kInput);
  const auto m1 = d.add(ir::Opcode::kMul, {a, a});
  const auto s1 = d.add(ir::Opcode::kAdd, {m1, a});
  const auto m2 = d.add(ir::Opcode::kMul, {s1, a});
  const auto s2 = d.add(ir::Opcode::kAdd, {m2, a});
  d.mark_live_out(s2);
  EnumOptions opts;
  const auto connected = enumerate_candidates(d, lib(), opts);
  for (const auto& p :
       enumerate_disconnected(d, lib(), connected, opts.constraints)) {
    // No returned pair may contain an internal producer-consumer edge
    // between its two seed components... which in this graph means no pair
    // can exist at all (everything is one chain).
    ADD_FAILURE() << "unexpected disconnected pair of size "
                  << p.nodes.count();
  }
}

class DisconnectedProperty : public ::testing::TestWithParam<int> {};

TEST_P(DisconnectedProperty, AllPairsLegalAndDeduplicated) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 307 + 3);
  const ir::Dfg d = isex::testing::random_dfg(rng, 6, 40, 0.1);
  EnumOptions opts;
  const auto connected = enumerate_candidates(d, lib(), opts);
  const auto pairs =
      enumerate_disconnected(d, lib(), connected, opts.constraints);
  std::set<std::size_t> hashes;
  for (const auto& p : pairs) {
    EXPECT_TRUE(is_legal(d, p.nodes, opts.constraints));
    EXPECT_TRUE(hashes.insert(p.nodes.hash()).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisconnectedProperty, ::testing::Range(0, 10));

// --- hw::estimate invariants -------------------------------------------------

class EstimateProperty : public ::testing::TestWithParam<int> {};

TEST_P(EstimateProperty, LatencyBetweenMaxAndSum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 311 + 9);
  const ir::Dfg d = isex::testing::random_dfg(rng, 4, 30, 0.0);
  for (int trial = 0; trial < 20; ++trial) {
    auto s = d.empty_set();
    for (int v = 0; v < d.num_nodes(); ++v)
      if (ir::is_valid_for_ci(d.node(v).op) && rng.chance(0.4))
        s.set(static_cast<std::size_t>(v));
    if (s.none()) continue;
    const auto e = hw::estimate(d, s, lib());
    double max_lat = 0, sum_lat = 0, sum_area = 0;
    s.for_each([&](std::size_t v) {
      const auto& c = lib().cost(d.node(static_cast<int>(v)).op);
      max_lat = std::max(max_lat, c.hw_latency_ns);
      sum_lat += c.hw_latency_ns;
      sum_area += c.area;
    });
    EXPECT_GE(e.latency_ns, max_lat - 1e-9);
    EXPECT_LE(e.latency_ns, sum_lat + 1e-9);
    EXPECT_NEAR(e.area, sum_area, 1e-9);
    EXPECT_GE(e.hw_cycles, 1);
    EXPECT_GE(e.gain_per_exec, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace isex::ise
