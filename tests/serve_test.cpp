// isex::serve unit + integration tests: the bounded JSON parser, the request
// protocol, the certified result cache, the shedding policy, and the whole
// daemon loop driven over real pipes — interleaved valid/malformed/over-
// budget traffic, in-order responses, byte-identical cache hits, admission
// rejection, and graceful signal drain over a unix socket.
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "isex/robust/budget.hpp"
#include "isex/serve/cache.hpp"
#include "isex/serve/json.hpp"
#include "isex/serve/protocol.hpp"
#include "isex/serve/server.hpp"

namespace isex::serve {
namespace {

// --- JSON parser -------------------------------------------------------------

TEST(ServeJson, ParsesScalarsAndNesting) {
  EXPECT_TRUE(json_parse("null").ok());
  EXPECT_TRUE(json_parse("true").ok());
  EXPECT_TRUE(json_parse("-12.5e3").ok());
  EXPECT_TRUE(json_parse("\"hi\\u00e9\\n\"").ok());
  const auto r = json_parse("{\"a\":[1,2,{\"b\":null}],\"a\":3}");
  ASSERT_TRUE(r.ok());
  const Json* a = r.value.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->as_number(), 3);  // duplicate key: last wins
}

TEST(ServeJson, RejectsMalformed) {
  for (const char* bad :
       {"", "tru", "nul", "{", "[1,", "{\"a\":}", "01", "1.", "+1", "--2",
        "\"\\x\"", "\"\xc3(\"", "\"\\ud800\"", "[] []", "1 2", "{\"a\" 1}",
        "\"unterminated", "[1,2,]", "{,}", "\x01", "nan", "Infinity"}) {
    const auto r = json_parse(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(ServeJson, EnforcesLimits) {
  JsonLimits lim;
  lim.max_depth = 8;
  std::string deep;
  for (int i = 0; i < 9; ++i) deep += "[";
  for (int i = 0; i < 9; ++i) deep += "]";
  EXPECT_FALSE(json_parse(deep, lim).ok());

  lim = JsonLimits{};
  lim.max_values = 4;
  EXPECT_FALSE(json_parse("[1,2,3,4,5]", lim).ok());

  lim = JsonLimits{};
  lim.max_string_bytes = 4;
  EXPECT_FALSE(json_parse("\"abcdef\"", lim).ok());
  EXPECT_TRUE(json_parse("\"abc\"", lim).ok());
}

TEST(ServeJson, NumberRendering) {
  EXPECT_EQ(json_number(3), "3");
  EXPECT_EQ(json_number(-0.5), "-0.5");
  EXPECT_EQ(json_number(1e300), json_number(1e300));  // stable
}

// --- protocol decode ---------------------------------------------------------

Request decode_ok(const std::string& line) {
  auto dr = decode_request(line, RequestLimits{});
  const auto* err = std::get_if<DecodeError>(&dr);
  EXPECT_EQ(err, nullptr) << (err ? err->message : "");
  return std::get<Request>(dr);
}

DecodeError decode_err(const std::string& line) {
  auto dr = decode_request(line, RequestLimits{});
  EXPECT_TRUE(std::holds_alternative<DecodeError>(dr)) << line;
  return std::holds_alternative<DecodeError>(dr) ? std::get<DecodeError>(dr)
                                                 : DecodeError{};
}

TEST(ServeProtocol, DecodesSelect) {
  const Request r = decode_ok(
      "{\"id\":\"r1\",\"cmd\":\"select\",\"benchmarks\":[\"crc32\"],"
      "\"u0\":1.1,\"budget_fraction\":0.5,\"policy\":\"rms\","
      "\"node_budget\":1000,\"time_budget_ms\":50}");
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.cmd, Cmd::kSelect);
  EXPECT_EQ(r.policy, rt::Policy::kRms);
  ASSERT_EQ(r.benchmarks.size(), 1u);
  EXPECT_EQ(r.node_budget, 1000);
  EXPECT_NEAR(r.time_budget_seconds, 0.05, 1e-12);
  EXPECT_FALSE(r.budget_clamped);
}

TEST(ServeProtocol, ClampsOversizedBudgets) {
  RequestLimits lim;
  const Request r = decode_ok(
      "{\"cmd\":\"select\",\"benchmarks\":[\"crc32\"],\"u0\":1.0,"
      "\"budget_fraction\":0.5,\"time_budget_ms\":3600000,"
      "\"node_budget\":999999999999}");
  EXPECT_TRUE(r.budget_clamped);
  EXPECT_LE(r.time_budget_seconds, lim.max_time_budget_seconds);
  EXPECT_LE(r.node_budget, lim.max_node_budget);
}

TEST(ServeProtocol, RejectsSchemaViolations) {
  // Error code bad_request, and the id is echoed when it parsed.
  const DecodeError both = decode_err(
      "{\"id\":\"x\",\"cmd\":\"select\",\"benchmarks\":[\"a\"],\"u0\":1,"
      "\"tasks\":[],\"budget_fraction\":0.5}");
  EXPECT_EQ(both.code, ErrorCode::kBadRequest);
  EXPECT_EQ(both.id, "x");

  EXPECT_EQ(decode_err("{\"cmd\":\"select\",\"benchmarks\":[\"a\"],"
                       "\"u0\":1}").code,
            ErrorCode::kBadRequest);  // missing area constraint
  EXPECT_EQ(decode_err("{\"id\":42,\"cmd\":\"ping\"}").code,
            ErrorCode::kBadRequest);  // id must be a string
  EXPECT_EQ(decode_err("{\"cmd\":\"fly\"}").code, ErrorCode::kBadRequest);
  EXPECT_EQ(decode_err("{\"cmd\":\"select\",\"benchmarks\":[\"a\"],"
                       "\"u0\":-1,\"budget_fraction\":0.5}").code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(decode_err("not json").code, ErrorCode::kParseError);
}

TEST(ServeProtocol, DecodesInlineTasksAndDfg) {
  const Request r = decode_ok(
      "{\"cmd\":\"select\",\"area_budget\":2,\"tasks\":["
      "{\"name\":\"t0\",\"period\":50,\"configs\":[[0,40],[2,20]]},"
      "{\"name\":\"t1\",\"period\":100,\"dfg\":[{\"op\":\"input\",\"in\":[]},"
      "{\"op\":\"not\",\"in\":[0],\"out\":true}]}]}");
  ASSERT_EQ(r.tasks.size(), 2u);
  EXPECT_FALSE(r.tasks[0].has_dfg);
  ASSERT_EQ(r.tasks[0].configs.size(), 2u);
  EXPECT_TRUE(r.tasks[1].has_dfg);
  // DFG operand referencing a later op is rejected.
  EXPECT_EQ(decode_err("{\"cmd\":\"select\",\"area_budget\":2,\"tasks\":["
                       "{\"name\":\"t\",\"period\":9,\"dfg\":["
                       "{\"op\":\"not\",\"in\":[1]},"
                       "{\"op\":\"input\",\"in\":[]}]}]}").code,
            ErrorCode::kBadRequest);
}

// --- cache -------------------------------------------------------------------

rt::TaskSet tiny_taskset() {
  rt::TaskSet ts;
  ts.tasks.push_back(rt::Task{"a", 100, {{0, 50}, {2, 25}}});
  ts.tasks.push_back(rt::Task{"b", 200, {{0, 80}, {3, 40}}});
  return ts;
}

TEST(ServeCache, KeyCoversAnswerDeterminingInputs) {
  const rt::TaskSet ts = tiny_taskset();
  const auto base = select_cache_key(ts, 3.0, rt::Policy::kEdf, 1.0, 1000,
                                     1 << 20, false, 0);
  EXPECT_EQ(base, select_cache_key(ts, 3.0, rt::Policy::kEdf, 1.0, 1000,
                                   1 << 20, false, 0));
  EXPECT_NE(base, select_cache_key(ts, 2.0, rt::Policy::kEdf, 1.0, 1000,
                                   1 << 20, false, 0));
  EXPECT_NE(base, select_cache_key(ts, 3.0, rt::Policy::kRms, 1.0, 1000,
                                   1 << 20, false, 0));
  EXPECT_NE(base, select_cache_key(ts, 3.0, rt::Policy::kEdf, 1.0, 999,
                                   1 << 20, false, 0));
  EXPECT_NE(base, select_cache_key(ts, 3.0, rt::Policy::kEdf, 1.0, 1000,
                                   1 << 20, false, 1));  // shed rung
  rt::TaskSet ts2 = tiny_taskset();
  ts2.tasks[1].configs[1].cycles = 41;  // one curve point changed
  EXPECT_NE(base, select_cache_key(ts2, 3.0, rt::Policy::kEdf, 1.0, 1000,
                                   1 << 20, false, 0));
}

TEST(ServeCache, LruEvictionAndPoison) {
  CacheOptions co;
  co.max_entries = 2;
  ResultCache cache(co);
  ResultCache::Entry e;
  e.result_json = "{}";
  cache.insert(1, e);
  cache.insert(2, e);
  EXPECT_NE(cache.find(1), nullptr);  // touch 1 -> 2 becomes LRU
  cache.insert(3, e);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.find(2), nullptr);  // evicted
  EXPECT_EQ(cache.evictions(), 1u);
  cache.erase(1);
  EXPECT_EQ(cache.poisoned(), 1u);
  cache.erase(99);  // absent: not counted
  EXPECT_EQ(cache.poisoned(), 1u);
}

// --- server: in-process handle_line ------------------------------------------

// Inline-task selects keep these tests independent of the benchmark curve
// cache (no multi-second cold curve builds inside unit tests).
std::string inline_select(const std::string& id, double area = 3.0) {
  return "{\"id\":\"" + id + "\",\"cmd\":\"select\",\"area_budget\":" +
         json_number(area) +
         ",\"tasks\":[{\"name\":\"t0\",\"period\":100,\"configs\":"
         "[[0,50],[2,25]]},{\"name\":\"t1\",\"period\":200,\"configs\":"
         "[[0,80],[1,60],[3,40]]}],\"node_budget\":50000}";
}

TEST(ServeServer, PingStatsAndErrors) {
  Server server{ServerOptions{}};
  const std::string pong = server.handle_line("{\"id\":\"p\",\"cmd\":\"ping\"}");
  EXPECT_NE(pong.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(pong.find("\"id\":\"p\""), std::string::npos);
  EXPECT_NE(server.handle_line("{\"cmd\":\"stats\"}").find("\"cmd\":\"stats\""),
            std::string::npos);
  const std::string err = server.handle_line("{{{");
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(err.find("parse_error"), std::string::npos);
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

TEST(ServeServer, SelectIsCertifiedAndCacheHitsAreByteIdentical) {
  Server server{ServerOptions{}};
  const std::string cold = server.handle_line(inline_select("c1"));
  ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
  EXPECT_NE(cold.find("\"cache\":\"miss\""), std::string::npos);
  EXPECT_NE(cold.find("\"certificate\":{\"ok\":true"), std::string::npos);

  const std::string hit = server.handle_line(inline_select("c2"));
  ASSERT_NE(hit.find("\"cache\":\"hit\""), std::string::npos) << hit;
  // The stable `result` object (the tail of the envelope) is byte-identical.
  const auto tail = [](const std::string& s) {
    const std::size_t p = s.find("\"result\":");
    EXPECT_NE(p, std::string::npos);
    return s.substr(p);
  };
  EXPECT_EQ(tail(cold), tail(hit));
  EXPECT_EQ(server.stats().cache_hits, 1u);
  EXPECT_EQ(server.cache().hits(), 1u);
}

TEST(ServeServer, DeepQueueShedsToDegradedRung) {
  ServerOptions so;
  so.shed1_depth = 2;
  so.shed2_depth = 4;
  Server server{so};
  const std::string calm = server.handle_line(inline_select("a"), 0);
  EXPECT_NE(calm.find("\"shed_rung\":0"), std::string::npos);
  EXPECT_NE(calm.find("\"status\":\"Exact\""), std::string::npos);
  const std::string shed = server.handle_line(inline_select("b"), 3);
  EXPECT_NE(shed.find("\"shed_rung\":1"), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"status\":\"Degraded\""), std::string::npos);
  EXPECT_NE(shed.find("\"certificate\":{\"ok\":true"), std::string::npos);
  const std::string shed2 = server.handle_line(inline_select("c"), 5);
  EXPECT_NE(shed2.find("\"shed_rung\":2"), std::string::npos);
  EXPECT_GE(server.stats().shed_demotions, 2u);
  // Shed results live under different cache keys than exact ones.
  EXPECT_EQ(server.stats().cache_hits, 0u);
}

TEST(ServeServer, IsolationTurnsInternalFaultsIntoResponses) {
  Server server{ServerOptions{}};
  // A structurally valid request whose task set fails validation deep in the
  // library (period fine, but configs not starting at area 0).
  const std::string r = server.handle_line(
      "{\"id\":\"z\",\"cmd\":\"select\",\"area_budget\":1,\"tasks\":["
      "{\"name\":\"t\",\"period\":10,\"configs\":[[1,5]]}]}");
  EXPECT_NE(r.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(r.find("\"id\":\"z\""), std::string::npos);
}

// --- server: pipe-driven integration ----------------------------------------

/// Runs a request stream through Server::run over real pipes and returns the
/// response lines.
std::vector<std::string> run_over_pipe(Server& server,
                                       const std::vector<std::string>& reqs,
                                       int* rc_out = nullptr) {
  int in[2], out[2];
  EXPECT_EQ(::pipe(in), 0);
  EXPECT_EQ(::pipe(out), 0);
  std::string payload;
  for (const auto& r : reqs) payload += r + "\n";
  // Writer thread: pipes have finite capacity and the server may block on
  // writes if we don't drain concurrently.
  std::thread writer([&] {
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::write(in[1], payload.data() + off, payload.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(in[1]);
  });
  std::string blob;
  std::thread reader([&] {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(out[0], buf, sizeof buf);
      if (n <= 0) break;
      blob.append(buf, static_cast<std::size_t>(n));
    }
  });
  const int rc = server.run(in[0], out[1]);
  ::close(out[1]);
  ::close(in[0]);
  writer.join();
  reader.join();
  ::close(out[0]);
  if (rc_out != nullptr) *rc_out = rc;

  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = blob.find('\n'); nl != std::string::npos;
       nl = blob.find('\n', start)) {
    lines.push_back(blob.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(ServeServer, PipeStreamInOrderMixedTraffic) {
  Server server{ServerOptions{}};
  std::vector<std::string> reqs;
  for (int i = 0; i < 12; ++i) {
    switch (i % 4) {
      case 0: reqs.push_back(inline_select("q" + std::to_string(i))); break;
      case 1: reqs.push_back("{\"id\":\"q" + std::to_string(i) +
                             "\",\"cmd\":\"ping\"}"); break;
      case 2: reqs.push_back("broken json " + std::to_string(i)); break;
      default:  // over-budget: starvation node budget, still answered
        reqs.push_back("{\"id\":\"q" + std::to_string(i) +
                       "\",\"cmd\":\"select\",\"area_budget\":3,\"tasks\":["
                       "{\"name\":\"t0\",\"period\":100,\"configs\":"
                       "[[0,50],[2,25]]}],\"node_budget\":1}");
    }
  }
  int rc = -1;
  const auto lines = run_over_pipe(server, reqs, &rc);
  EXPECT_EQ(rc, 0);
  ASSERT_EQ(lines.size(), reqs.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i % 4 == 2) {
      EXPECT_NE(lines[i].find("parse_error"), std::string::npos) << lines[i];
    } else {
      // Response i correlates to request i: in-order responses.
      EXPECT_NE(lines[i].find("\"id\":\"q" + std::to_string(i) + "\""),
                std::string::npos)
          << lines[i];
    }
    // Every successful select carries a passing certificate.
    if (lines[i].find("\"cmd\":\"select\"") != std::string::npos &&
        lines[i].find("\"ok\":true") != std::string::npos)
      EXPECT_NE(lines[i].find("\"certificate\":{\"ok\":true"),
                std::string::npos)
          << lines[i];
  }
}

TEST(ServeServer, AdmissionControlRejectsInOrder) {
  ServerOptions so;
  so.queue_capacity = 2;
  Server server{so};
  std::vector<std::string> reqs;
  for (int i = 0; i < 10; ++i)
    reqs.push_back(inline_select("q" + std::to_string(i)));
  const auto lines = run_over_pipe(server, reqs);
  ASSERT_EQ(lines.size(), reqs.size());
  std::size_t overloads = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"id\":\"q" + std::to_string(i) + "\""),
              std::string::npos)
        << "out of order at " << i << ": " << lines[i];
    if (lines[i].find("\"code\":\"overload\"") != std::string::npos) {
      ++overloads;
      EXPECT_NE(lines[i].find("\"retry_after_ms\":"), std::string::npos);
    }
  }
  // The whole burst lands before the first solve: capacity 2 admits the
  // head, the rest must be rejected (shed, never queued unboundedly).
  EXPECT_GE(overloads, 1u);
  EXPECT_EQ(server.stats().rejected_overload, overloads);
  EXPECT_LE(server.stats().accepted, 10u - overloads + 1);
}

TEST(ServeServer, OversizedLineGetsTooLargeAndStreamRecovers) {
  ServerOptions so;
  so.limits.max_request_bytes = 256;
  Server server{so};
  std::string huge = "{\"id\":\"big\",\"cmd\":\"ping\",\"pad\":\"";
  huge.append(2000, 'x');
  huge += "\"}";
  const auto lines = run_over_pipe(
      server, {huge, "{\"id\":\"after\",\"cmd\":\"ping\"}"});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("too_large"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"id\":\"after\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos);
}

TEST(ServeServer, VanishingClientIsAWriteErrorNotSigpipe) {
  // A client that queues requests and disappears without reading a byte
  // must surface as a failed write (rc 2), never as SIGPIPE killing the
  // daemon: install_signal_handlers ignores SIGPIPE and write_all_fd sends
  // with MSG_NOSIGNAL on sockets.
  install_signal_handlers();
  consume_pending_signal();
  robust::clear_global_cancel();

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Server server{ServerOptions{}};
  std::string payload;
  for (int i = 0; i < 4; ++i)
    payload += inline_select("v" + std::to_string(i)) + "\n";
  ASSERT_EQ(::write(sv[1], payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  ::close(sv[1]);  // the client is gone before any response exists
  EXPECT_EQ(server.run(sv[0], sv[0]), 2);
  ::close(sv[0]);

  // Same, but the client only half-closes: it shuts down its read side and
  // keeps the socket open. Responses still have nowhere to go.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_EQ(::write(sv[1], payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  ::shutdown(sv[1], SHUT_RD);
  ::shutdown(sv[1], SHUT_WR);  // and EOF on the request side
  EXPECT_EQ(server.run(sv[0], sv[0]), 2);
  ::close(sv[0]);
  ::close(sv[1]);

  // The server object survives the dead streams and serves the next one.
  const auto lines = run_over_pipe(server, {inline_select("again")});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
}

TEST(ServeServer, UnixSocketServesAndDrainsOnSignal) {
  // End-to-end over AF_UNIX, shut down by a real SIGTERM: the accept loop
  // exits, the socket file is removed, and the signal machinery is left
  // clean for the rest of the test binary.
  install_signal_handlers();
  consume_pending_signal();
  robust::clear_global_cancel();

  const std::string path = "/tmp/isex_serve_test_" +
                           std::to_string(::getpid()) + ".sock";
  Server server{ServerOptions{}};
  std::thread srv([&] { run_unix_socket(server, path); });

  int fd = -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int tries = 0; tries < 100; ++tries) {  // wait for bind
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      break;
    ::close(fd);
    fd = -1;
    ::usleep(20000);
  }
  ASSERT_GE(fd, 0) << "could not connect to " << path;
  const std::string req = "{\"id\":\"sock\",\"cmd\":\"ping\"}\n";
  ASSERT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  ::shutdown(fd, SHUT_WR);
  std::string resp;
  char buf[1024];
  for (ssize_t n; (n = ::read(fd, buf, sizeof buf)) > 0;)
    resp.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  EXPECT_NE(resp.find("\"id\":\"sock\""), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos);

  ::raise(SIGTERM);
  srv.join();
  EXPECT_EQ(consume_pending_signal(), SIGTERM);
  robust::clear_global_cancel();
  EXPECT_NE(::unlink(path.c_str()), 0);  // already removed by the server
}

}  // namespace
}  // namespace isex::serve
