// Chapter 7 tests: model invariants, DP vs exact optimum, and the
// reconfiguration-vs-static crossover the chapter's evaluation relies on.
#include <gtest/gtest.h>

#include "isex/rtreconfig/algorithms.hpp"
#include "isex/util/rng.hpp"

namespace isex::rtreconfig {
namespace {

Problem random_problem(util::Rng& rng, int n) {
  Problem p;
  p.max_area = rng.uniform_int(60, 150);
  p.reconfig_cost = rng.uniform_int(5, 40);
  for (int i = 0; i < n; ++i) {
    TaskCis t;
    t.name = "T" + std::to_string(i);
    const double sw = rng.uniform_int(100, 600);
    t.period = sw * rng.uniform_real(2.5, 6.0);
    t.versions.push_back({0, sw});
    double area = 0, cycles = sw;
    const int k = rng.uniform_int(1, 3);
    for (int j = 0; j < k; ++j) {
      area += rng.uniform_int(10, 80);
      cycles *= rng.uniform_real(0.6, 0.9);
      t.versions.push_back({area, std::floor(cycles)});
    }
    p.tasks.push_back(std::move(t));
  }
  return p;
}

TEST(Model, UtilizationAccountsReconfigOnlyWithMultipleConfigs) {
  Problem p;
  p.max_area = 100;
  p.reconfig_cost = 10;
  p.tasks = {{"A", 100, {{0, 50}, {60, 30}}},
             {"B", 200, {{0, 80}, {60, 40}}}};
  // Single configuration: no overhead.
  EXPECT_DOUBLE_EQ(effective_utilization(p, {1, 0}, {0, -1}),
                   30.0 / 100 + 80.0 / 200);
  // Two configurations: both hardware tasks pay rho per job.
  EXPECT_DOUBLE_EQ(effective_utilization(p, {1, 1}, {0, 1}),
                   40.0 / 100 + 50.0 / 200);
}

TEST(Model, FeasibilityChecksAreaAndConsistency) {
  Problem p;
  p.max_area = 100;
  p.tasks = {{"A", 100, {{0, 50}, {80, 30}}},
             {"B", 200, {{0, 80}, {70, 40}}}};
  Solution ok = finish(p, {1, 1}, {0, 1});
  EXPECT_TRUE(feasible(p, ok));
  Solution too_big = finish(p, {1, 1}, {0, 0});  // 150 > 100 in one config
  EXPECT_FALSE(feasible(p, too_big));
  Solution inconsistent = finish(p, {1, 0}, {-1, -1});  // hw without config
  EXPECT_FALSE(feasible(p, inconsistent));
}

TEST(Static, UsesOneConfigurationOnly) {
  util::Rng rng(3);
  const Problem p = random_problem(rng, 5);
  const Solution s = static_partition(p);
  EXPECT_TRUE(feasible(p, s));
  EXPECT_LE(s.num_configs(), 1);
}

TEST(Reconfiguration, BeatsStaticWhenFabricIsTight) {
  // Two tasks whose best versions each nearly fill the fabric: statically
  // only one fits; with reconfiguration both fit (one config each) and the
  // small rho keeps the win.
  Problem p;
  p.max_area = 100;
  p.reconfig_cost = 5;
  p.tasks = {{"A", 1000, {{0, 500}, {90, 200}}},
             {"B", 1000, {{0, 500}, {90, 200}}}};
  const Solution stat = static_partition(p);
  const Solution dp = dp_partition(p);
  EXPECT_LE(stat.num_configs(), 1);
  EXPECT_EQ(dp.num_configs(), 2);
  EXPECT_LT(dp.utilization, stat.utilization);
  // Exact numbers: static = 0.2 + 0.5; dp = (200+5)/1000 * 2.
  EXPECT_DOUBLE_EQ(stat.utilization, 0.7);
  EXPECT_DOUBLE_EQ(dp.utilization, 0.41);
}

TEST(Reconfiguration, StaticWinsWhenRhoIsHuge) {
  Problem p;
  p.max_area = 100;
  p.reconfig_cost = 10'000;  // swamps any gain
  p.tasks = {{"A", 1000, {{0, 500}, {90, 200}}},
             {"B", 1000, {{0, 500}, {90, 200}}}};
  const Solution dp = dp_partition(p);
  const Solution stat = static_partition(p);
  EXPECT_DOUBLE_EQ(dp.utilization, stat.utilization);
  EXPECT_LE(dp.num_configs(), 1);
}

class DpVsOptimal : public ::testing::TestWithParam<int> {};

TEST_P(DpVsOptimal, DpNearOptimalAndOptimalNeverWorse) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 191 + 29);
  const Problem p = random_problem(rng, rng.uniform_int(2, 5));
  const Solution dp = dp_partition(p);
  const auto opt = optimal_partition(p);
  ASSERT_TRUE(opt.completed);
  EXPECT_TRUE(feasible(p, dp));
  EXPECT_TRUE(feasible(p, opt.solution));
  EXPECT_LE(opt.solution.utilization, dp.utilization + 1e-9);
  // Near-optimality claim of the chapter: DP stays within 5%.
  EXPECT_LE(dp.utilization, opt.solution.utilization * 1.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpVsOptimal, ::testing::Range(0, 20));

TEST(Optimal, NodeCapReportsTruncation) {
  util::Rng rng(9);
  const Problem p = random_problem(rng, 8);
  const auto opt = optimal_partition(p, 50);
  EXPECT_FALSE(opt.completed);
  EXPECT_TRUE(feasible(p, opt.solution));  // warm start keeps it valid
}

}  // namespace
}  // namespace isex::rtreconfig
