#include "isex/ir/program.hpp"

#include <gtest/gtest.h>

#include "isex/hw/cell_library.hpp"

namespace isex::ir {
namespace {

/// prologue; loop(10){ body; if(p=.25) rare else common }; epilogue
Program sample_program() {
  Program p("sample");
  const int prologue = p.add_block("prologue");
  const int body = p.add_block("body");
  const int rare = p.add_block("rare");
  const int common = p.add_block("common");
  const int epilogue = p.add_block("epilogue");

  auto fill = [&](int b, int adds) {
    auto& d = p.block(b).dfg;
    const auto i = d.add(Opcode::kInput);
    auto prev = i;
    for (int k = 0; k < adds; ++k) prev = d.add(Opcode::kAdd, {prev, i});
    d.mark_live_out(prev);
  };
  fill(prologue, 2);
  fill(body, 6);
  fill(rare, 8);
  fill(common, 3);
  fill(epilogue, 1);

  const int if_s = p.stmt_if({p.stmt_block(rare), p.stmt_block(common)},
                             {0.25, 0.75});
  const int loop_body = p.stmt_seq({p.stmt_block(body), if_s});
  const int loop = p.stmt_loop(10, loop_body);
  p.set_root(p.stmt_seq({p.stmt_block(prologue), loop, p.stmt_block(epilogue)}));
  return p;
}

BlockCost unit_cost() {
  return Program::sum_cost([](const Node& n) {
    return hw::CellLibrary::standard_018um().sw_cycles(n);
  });
}

TEST(Program, WcetTakesMaxBranch) {
  const Program p = sample_program();
  // Per-exec block costs: prologue 2, body 6, rare 8, common 3, epilogue 1.
  // WCET = 2 + 10*(6 + max(8,3)) + 1 = 143.
  EXPECT_DOUBLE_EQ(p.wcet(unit_cost()), 143.0);
}

TEST(Program, WcetCountsFollowWorstPath) {
  const Program p = sample_program();
  const auto counts = p.wcet_counts(unit_cost());
  EXPECT_EQ(counts[0], 1);   // prologue
  EXPECT_EQ(counts[1], 10);  // body
  EXPECT_EQ(counts[2], 10);  // rare (worst branch)
  EXPECT_EQ(counts[3], 0);   // common not on WCET path
  EXPECT_EQ(counts[4], 1);   // epilogue
}

TEST(Program, ProfileUsesBranchProbabilities) {
  Program p = sample_program();
  // Expected cycles = 2 + 10*(6 + .25*8 + .75*3) + 1 = 2 + 10*10.25 + 1.
  EXPECT_DOUBLE_EQ(p.profile(unit_cost()), 105.5);
  EXPECT_EQ(p.block(1).exec_count, 10);
  EXPECT_EQ(p.block(2).exec_count, 3);  // round(10 * 0.25) = 3 (llround 2.5)
  EXPECT_EQ(p.block(3).exec_count, 8);  // round(10 * 0.75)
}

TEST(Program, LoopDiscoveryAndContainment) {
  const Program p = sample_program();
  const auto loops = p.loop_stmts();
  ASSERT_EQ(loops.size(), 1u);
  const auto blocks = p.blocks_in(loops[0]);
  EXPECT_EQ(blocks, (std::vector<int>{1, 2, 3}));
}

TEST(Program, NestedLoopsMultiply) {
  Program p("nested");
  const int b = p.add_block("b");
  auto& d = p.block(b).dfg;
  const auto i = d.add(Opcode::kInput);
  d.mark_live_out(d.add(Opcode::kAdd, {i, i}));
  const int inner = p.stmt_loop(5, p.stmt_block(b));
  const int outer = p.stmt_loop(3, inner);
  p.set_root(outer);
  EXPECT_DOUBLE_EQ(p.wcet(unit_cost()), 15.0);
  EXPECT_EQ(p.wcet_counts(unit_cost())[0], 15);
  EXPECT_EQ(p.loop_stmts().size(), 2u);
}

TEST(Program, RejectsInvalidConstruction) {
  Program p("bad");
  EXPECT_THROW(p.stmt_block(0), std::invalid_argument);
  const int b = p.add_block("b");
  EXPECT_THROW(p.stmt_loop(0, p.stmt_block(b)), std::invalid_argument);
  EXPECT_THROW(p.stmt_if({p.stmt_block(b)}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(p.wcet(unit_cost()), std::logic_error);  // no root yet
}

}  // namespace
}  // namespace isex::ir
