// Compile-out guard for the flight recorder: with ISEX_NO_OBS defined
// before any isex header, the ISEX_JOURNAL* macros must expand to
// `((void)0)` — no records, no scopes — while the Journal class itself
// stays fully usable and the serve path keeps producing the same response
// bytes it produces in an instrumented TU (the library this links against
// is instrumented; the contract is that nothing downstream ever *reads*
// the journal to make a decision, so compiling the macros out of a TU can
// not change what that TU observes on the wire).
#define ISEX_NO_OBS

#include <gtest/gtest.h>

#include <string>

#include "isex/obs/journal.hpp"
#include "isex/serve/json.hpp"
#include "isex/serve/server.hpp"

namespace isex {
namespace {

using obs::Journal;
using obs::JournalKind;
using obs::JournalPhase;

TEST(JournalNoop, MacrosCompileToNothing) {
  auto& j = Journal::global();
  j.set_capacity(64);
  const std::uint64_t before = j.head();
  ISEX_JOURNAL(kMark, kNone, 0, 1, 2);
  { ISEX_JOURNAL_SCOPE(42); }
  EXPECT_EQ(j.head(), before);
  EXPECT_EQ(obs::current_request_id(), 0u);
}

TEST(JournalNoop, ExplicitApiStillWorks) {
  // Only the macros vanish; the class keeps working in a no-obs TU (the
  // `isex tail` converter and the crash handler rely on this).
  auto& j = Journal::global();
  j.set_capacity(64);
  EXPECT_GT(j.record(JournalKind::kMark, JournalPhase::kNone, 0, 5, 0, 9),
            0u);
  const auto recs = j.snapshot();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].v0, 5);
  EXPECT_EQ(recs[0].rid, 9u);
  {
    obs::JournalScope scope(31);  // the class, not the macro
    EXPECT_EQ(obs::current_request_id(), 31u);
  }
  j.clear();
}

// The wire contract this TU exists to pin: a serve conversation driven from
// no-obs code is byte-identical (modulo the wall-clock elapsed_ms field) to
// the instrumented journal_test run of the same sequence — same rids, same
// envelopes, same stats keys. Here we assert the response shape directly;
// journal_test asserts the journal-on/off half in-process.
TEST(JournalNoop, ServeResponsesCarryRidsAndStatsParse) {
  serve::Server server{serve::ServerOptions{}};
  const std::string r1 = server.handle_line(
      "{\"id\":\"a\",\"cmd\":\"select\",\"area_budget\":3.0,"
      "\"tasks\":[{\"name\":\"t0\",\"period\":100,\"configs\":"
      "[[0,50],[2,25]]}],\"node_budget\":50000}");
  EXPECT_NE(r1.find("\"ok\":true"), std::string::npos) << r1;
  EXPECT_NE(r1.find("\"rid\":1"), std::string::npos) << r1;
  const std::string stats =
      server.handle_line("{\"id\":\"s\",\"cmd\":\"stats\"}");
  EXPECT_NE(stats.find("\"rid\":2"), std::string::npos);
  serve::JsonParseResult pr = serve::json_parse(stats);
  ASSERT_TRUE(pr.ok()) << pr.error;
  const serve::Json* result = pr.value.find("result");
  ASSERT_NE(result, nullptr);
  // The latency histograms are class members, not macros: present and
  // populated even from a no-obs TU.
  const serve::Json* lat = result->find("latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("total")->find("count")->as_number(), 1);
  EXPECT_EQ(lat->find("exact")->find("count")->as_number(), 1);
}

}  // namespace
}  // namespace isex
