// Real-time substrate tests: analytic schedulability vs simulated ground
// truth, EDF boundary behaviour, and the classic RMS counterexamples.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "isex/rt/schedulability.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/util/rng.hpp"

namespace isex::rt {
namespace {

TEST(Edf, BoundaryIsExactlyOne) {
  EXPECT_TRUE(edf_schedulable(1.0));
  EXPECT_TRUE(edf_schedulable(0.3));
  EXPECT_FALSE(edf_schedulable(1.001));
}

TEST(Rms, LiuLaylandBoundValues) {
  EXPECT_DOUBLE_EQ(rms_utilization_bound(1), 1.0);
  EXPECT_NEAR(rms_utilization_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(rms_utilization_bound(3), 0.7798, 1e-4);
}

TEST(Rms, ClassicFullUtilizationHarmonicSetIsSchedulable) {
  // Harmonic periods reach U = 1 under RMS.
  EXPECT_TRUE(rms_schedulable({1, 1, 2}, {2, 4, 8}));  // U = 1.0
  EXPECT_FALSE(rms_schedulable({1, 1, 3}, {2, 4, 8}));  // U = 1.125
}

TEST(Rms, ClassicUnschedulableAboveBound) {
  // C=(1,1,1), P=(2,3,4): U = 1/2+1/3+1/4 = 1.083 > 1 -> infeasible.
  EXPECT_FALSE(rms_schedulable({1, 1, 1}, {2, 3, 4}));
  // C=(1,1,1), P=(2,3,6): U = 1.0 exactly, and it IS RMS-schedulable
  // (critical instant: T3 finishes exactly at t=6).
  EXPECT_TRUE(rms_schedulable({1, 1, 1}, {2, 3, 6}));
}

TEST(Rms, LoadFactorMonotoneInCycles) {
  const double l1 = rms_load_factor(2, {1, 1, 1}, {4, 6, 8});
  const double l2 = rms_load_factor(2, {1, 1, 3}, {4, 6, 8});
  EXPECT_LT(l1, l2);
}

TEST(Simulator, HyperperiodLcm) {
  EXPECT_EQ(hyperperiod({{1, 4}, {1, 6}}, 1000), 12);
  EXPECT_EQ(hyperperiod({{1, 7}, {1, 11}, {1, 13}}, 100), 100);  // saturates
}

TEST(Simulator, MeetsDeadlinesAtFullEdfUtilization) {
  const std::vector<SimTask> tasks{{2, 4}, {3, 6}};  // U = 1.0
  SimOptions o;
  o.policy = Policy::kEdf;
  const auto r = simulate(tasks, o);
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.busy_cycles, r.horizon);  // fully loaded
}

TEST(Simulator, DetectsOverloadMiss) {
  const std::vector<SimTask> tasks{{3, 4}, {2, 6}};  // U = 1.083
  SimOptions o;
  o.policy = Policy::kEdf;
  const auto r = simulate(tasks, o);
  EXPECT_FALSE(r.all_met);
  EXPECT_FALSE(r.misses.empty());
}

TEST(Simulator, RmsPreemptionOrder) {
  // Shortest period runs first; T1 (P=4) preempts T2.
  const std::vector<SimTask> tasks{{1, 4}, {5, 10}};
  SimOptions o;
  o.policy = Policy::kRms;
  const auto r = simulate(tasks, o);
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.completed_jobs[0], r.horizon / 4);
  EXPECT_EQ(r.completed_jobs[1], r.horizon / 10);
}

// Property: the exact RMS test (Theorem 1) agrees with hyperperiod simulation
// of the synchronous (critical-instant) release pattern.
class RmsVsSimulation : public ::testing::TestWithParam<int> {};

TEST_P(RmsVsSimulation, ExactTestMatchesSimulation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 17);
  const int n = rng.uniform_int(2, 5);
  std::vector<SimTask> tasks;
  std::vector<double> cycles, periods;
  for (int i = 0; i < n; ++i) {
    // Small periods keep the hyperperiod tame.
    const std::int64_t p = rng.uniform_int(4, 24);
    const std::int64_t c = rng.uniform_int(1, static_cast<int>(p) / 2 + 1);
    tasks.push_back({c, p});
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const SimTask& a, const SimTask& b) { return a.period < b.period; });
  for (const auto& t : tasks) {
    cycles.push_back(static_cast<double>(t.wcet));
    periods.push_back(static_cast<double>(t.period));
  }
  SimOptions o;
  o.policy = Policy::kRms;
  const auto sim = simulate(tasks, o);
  EXPECT_EQ(rms_schedulable(cycles, periods), sim.all_met)
      << "analysis and simulation disagree";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmsVsSimulation, ::testing::Range(0, 40));

// Property: EDF analysis (U <= 1) agrees with simulation.
class EdfVsSimulation : public ::testing::TestWithParam<int> {};

TEST_P(EdfVsSimulation, UtilizationTestMatchesSimulation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 5);
  const int n = rng.uniform_int(2, 5);
  std::vector<SimTask> tasks;
  double u = 0;
  for (int i = 0; i < n; ++i) {
    const std::int64_t p = rng.uniform_int(4, 24);
    const std::int64_t c = rng.uniform_int(1, static_cast<int>(p));
    tasks.push_back({c, p});
    u += static_cast<double>(c) / static_cast<double>(p);
  }
  SimOptions o;
  o.policy = Policy::kEdf;
  const auto sim = simulate(tasks, o);
  EXPECT_EQ(edf_schedulable(u), sim.all_met);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfVsSimulation, ::testing::Range(0, 40));

}  // namespace
}  // namespace isex::rt
