// Cross-run determinism: two identical isex invocations (same flags, same
// seeds) must produce byte-identical artifacts — the certify -o report, the
// --metrics JSON, and the command's stdout. Deterministic work caps (node
// budgets, fixed RNG seeds) rather than wall clocks make this possible; the
// first run below warms every lazy cache (workload memoization) so both
// measured runs take identical code paths, and the metrics registry is reset
// to the process-start state before each, exactly what a fresh invocation of
// the binary would see.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "isex/cli/driver.hpp"
#include "isex/obs/metrics.hpp"

namespace isex::cli {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Runs the CLI with stdout captured to `stdout_path` and stderr discarded.
int run_captured(const std::vector<std::string>& args,
                 const std::string& stdout_path) {
  ::fflush(stdout);
  ::fflush(stderr);
  const int out = ::dup(1), err = ::dup(2);
  const int cap = ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                         0644);
  const int null = ::open("/dev/null", O_WRONLY);
  ::dup2(cap, 1);
  ::dup2(null, 2);
  const int rc = run(args);
  ::fflush(stdout);
  ::fflush(stderr);
  ::dup2(out, 1);
  ::dup2(err, 2);
  ::close(out);
  ::close(err);
  ::close(cap);
  ::close(null);
  return rc;
}

TEST(Determinism, CertifyReportMetricsAndStdoutAreByteIdentical) {
  const std::string report = "/tmp/isex_det_certify.json";
  const std::string metrics = "/tmp/isex_det_metrics.json";
  const std::string stdout_path = "/tmp/isex_det_stdout.txt";
  const std::vector<std::string> args = {
      "--metrics=" + metrics, "certify", "crc32", "g721decode",
      "-o",                   report};

  ASSERT_EQ(run_captured(args, stdout_path), 0);  // warm lazy caches
  obs::Registry::global().reset();
  ASSERT_EQ(run_captured(args, stdout_path), 0);
  const std::string report1 = slurp(report);
  const std::string metrics1 = slurp(metrics);
  const std::string stdout1 = slurp(stdout_path);

  obs::Registry::global().reset();
  ASSERT_EQ(run_captured(args, stdout_path), 0);
  EXPECT_EQ(report1, slurp(report));
  EXPECT_EQ(metrics1, slurp(metrics));
  EXPECT_EQ(stdout1, slurp(stdout_path));
  EXPECT_FALSE(report1.empty());
  EXPECT_NE(report1.find("\"ok\": true"), std::string::npos);

  std::remove(report.c_str());
  std::remove(metrics.c_str());
  std::remove(stdout_path.c_str());
}

TEST(Determinism, SelectAndReconfigStdoutAreByteIdentical) {
  const std::string stdout_path = "/tmp/isex_det_cmd.txt";
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"select", "1.08", "0.5", "edf", "crc32",
                                 "sha", "g721decode"},
        std::vector<std::string>{"reconfig", "12", "42"}}) {
    ASSERT_EQ(run_captured(args, stdout_path), 0);  // warm lazy caches
    const std::string first = slurp(stdout_path);
    ASSERT_EQ(run_captured(args, stdout_path), 0);
    EXPECT_EQ(first, slurp(stdout_path));
    EXPECT_FALSE(first.empty());
  }
  std::remove(stdout_path.c_str());
}

}  // namespace
}  // namespace isex::cli
