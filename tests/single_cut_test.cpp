#include "isex/ise/single_cut.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::ise {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

// Ground truth: best gain over *all* legal subsets (including disconnected
// ones, which the single-cut search also explores).
double brute_best_gain(const ir::Dfg& d, const Constraints& c, double freq) {
  double best = 0;
  for (const auto& s : isex::testing::brute_force_legal(d, c)) {
    const auto e = hw::estimate(d, s, lib());
    best = std::max(best, e.gain_per_exec * freq);
  }
  return best;
}

class SingleCutProperty : public ::testing::TestWithParam<int> {};

TEST_P(SingleCutProperty, MatchesBruteForceOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const ir::Dfg d = isex::testing::random_dfg(rng, 3, 12, 0.12);
  SingleCutOptions opts;
  const auto r = optimal_single_cut(d, lib(), opts);
  ASSERT_TRUE(r.completed);
  const double expected = brute_best_gain(d, opts.constraints, 1.0);
  const double got = r.best ? r.best->total_gain() : 0.0;
  EXPECT_DOUBLE_EQ(got, expected);
  if (r.best) EXPECT_TRUE(is_legal(d, r.best->nodes, opts.constraints));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleCutProperty, ::testing::Range(0, 20));

TEST(SingleCut, RespectsAllowedMask) {
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  const auto a = d.add(ir::Opcode::kAdd, {i, i});
  const auto b = d.add(ir::Opcode::kXor, {a, i});
  const auto c = d.add(ir::Opcode::kShl, {b, i});
  d.mark_live_out(c);
  SingleCutOptions opts;
  opts.allowed = d.empty_set();
  // Only b and c selectable.
  opts.allowed.set(static_cast<std::size_t>(b));
  opts.allowed.set(static_cast<std::size_t>(c));
  const auto r = optimal_single_cut(d, lib(), opts);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_FALSE(r.best->nodes.test(static_cast<std::size_t>(a)));
}

TEST(SingleCut, EmptyWhenNoGainPossible) {
  // A lone multiply cannot be beaten in hardware vs two sw cycles? It can:
  // mul = 5.8ns -> 1 hw cycle vs 2 sw cycles. Use a single add instead, which
  // as a 1-node cut is below the 2-node minimum.
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  const auto a = d.add(ir::Opcode::kAdd, {i, i});
  d.mark_live_out(a);
  const auto r = optimal_single_cut(d, lib(), SingleCutOptions{});
  EXPECT_FALSE(r.best.has_value());
}

TEST(SingleCut, DeadlineReturnsIncompleteOnLargeGraph) {
  util::Rng rng(4242);
  const ir::Dfg d = isex::testing::random_dfg(rng, 8, 600, 0.02);
  SingleCutOptions opts;
  opts.time_budget_seconds = 0.01;
  const auto r = optimal_single_cut(d, lib(), opts);
  // Either it finished remarkably fast or it reports the truncation honestly.
  if (!r.completed) SUCCEED();
  EXPECT_GT(r.nodes_explored, 0);
}

TEST(SingleCut, FreqScalesGain) {
  ir::Dfg d;
  const auto i = d.add(ir::Opcode::kInput);
  const auto a = d.add(ir::Opcode::kAdd, {i, i});
  const auto b = d.add(ir::Opcode::kAdd, {a, i});
  d.mark_live_out(b);
  const auto r1 = optimal_single_cut(d, lib(), SingleCutOptions{}, 0, 1.0);
  const auto r2 = optimal_single_cut(d, lib(), SingleCutOptions{}, 0, 10.0);
  ASSERT_TRUE(r1.best && r2.best);
  EXPECT_DOUBLE_EQ(r2.best->total_gain(), 10 * r1.best->total_gain());
}

}  // namespace
}  // namespace isex::ise
