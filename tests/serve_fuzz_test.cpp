// Seeded-random fuzzing of the serve request path (no libFuzzer dependency):
// tens of thousands of hostile lines — random bytes, mutated and truncated
// valid requests, pathological nesting, huge tokens, wrong-schema values —
// through the bounded JSON parser, the request decoder, and the full
// Server::handle_line isolation boundary. The contract under test is total:
// no crash, no throw, and every single input maps to a response line that is
// itself well-formed JSON with an "ok" verdict or a structured error.
//
// Valid selects use inline task sets (explicit configuration curves) with
// small node budgets, so the 10k+ iterations stay fast while still running
// the real solver + certifier on thousands of instances. Run under
// asan/ubsan in CI (see the serve-soak job), this is the "parser fuzz, no
// crash/leak" acceptance gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "isex/serve/json.hpp"
#include "isex/serve/protocol.hpp"
#include "isex/serve/server.hpp"
#include "isex/serve/traffic.hpp"
#include "isex/util/rng.hpp"

namespace isex::serve {
namespace {

std::string random_bytes(util::Rng& rng, int max_len) {
  const int len = rng.uniform_int(0, max_len);
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    char c = static_cast<char>(rng.uniform_int(0, 255));
    if (c == '\n') c = ' ';
    s += c;
  }
  return s;
}

std::string valid_inline_select(util::Rng& rng, int i) {
  std::string s = "{\"id\":\"f" + std::to_string(i) +
                  "\",\"cmd\":\"select\",\"area_budget\":" +
                  std::to_string(rng.uniform_int(1, 6)) + ",\"tasks\":[";
  const int n = rng.uniform_int(1, 3);
  for (int t = 0; t < n; ++t) {
    if (t > 0) s += ",";
    const int base = 20 * (t + 1) + rng.uniform_int(0, 9);
    s += "{\"name\":\"t" + std::to_string(t) + "\",\"period\":" +
         std::to_string(100 * (t + 1)) + ",\"configs\":[[0," +
         std::to_string(base) + "],[2," + std::to_string(base / 2) + "]]}";
  }
  s += "],\"node_budget\":" + std::to_string(rng.uniform_int(1, 5000));
  if (rng.chance(0.3)) s += ",\"policy\":\"rms\"";
  s += "}";
  return s;
}

std::string hostile_line(util::Rng& rng, int i) {
  switch (rng.uniform_int(0, 9)) {
    case 0:
      return random_bytes(rng, 300);
    case 1: {  // truncation
      const std::string v = valid_inline_select(rng, i);
      return v.substr(0, static_cast<std::size_t>(rng.uniform_int(
                             0, static_cast<int>(v.size()))));
    }
    case 2: {  // point mutations
      std::string v = valid_inline_select(rng, i);
      for (int m = rng.uniform_int(1, 4); m > 0; --m)
        v[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(v.size()) - 1))] =
            static_cast<char>(rng.uniform_int(0, 255));
      for (auto& c : v)
        if (c == '\n') c = ' ';
      return v;
    }
    case 3: {  // nesting at and beyond the depth limit
      const int depth = rng.uniform_int(60, 80);
      std::string v;
      for (int d = 0; d < depth; ++d) v += rng.chance(0.5) ? "[" : "{\"k\":";
      v += "1";
      return v;
    }
    case 4: {  // huge string token
      std::string v = "{\"id\":\"";
      v.append(static_cast<std::size_t>(rng.uniform_int(1, 100000)), 'a');
      return v + "\",\"cmd\":\"ping\"}";
    }
    case 5: {  // huge number / exponent abuse
      std::string v = "{\"cmd\":\"select\",\"u0\":1e";
      v += std::to_string(rng.uniform_i64(300, 99999999));
      return v + ",\"benchmarks\":[\"crc32\"],\"budget_fraction\":0.5}";
    }
    case 6:  // schema-valid JSON, wrong types everywhere
      return "{\"id\":[],\"cmd\":{\"select\":1},\"tasks\":\"many\","
             "\"u0\":\"fast\",\"node_budget\":[1,2]}";
    case 7: {  // duplicate keys, unicode, escapes
      std::string v = "{\"id\":\"\\u00e9\\u00e9\",\"id\":\"\\ud83d\\ude00\","
                      "\"cmd\":\"ping\",\"cmd\":\"stats\"}";
      return v;
    }
    case 8:  // deep but wide: many values
      return "[" + std::string(2000, '1') + "]";
    default: {
      std::string v = valid_inline_select(rng, i);
      return v + v;  // trailing garbage (concatenated JSON)
    }
  }
}

TEST(ServeFuzz, TenThousandHostileLinesThroughTheFullPath) {
  util::Rng rng(20070613);
  ServerOptions so;
  so.default_time_budget_seconds = 0.1;  // fuzz inputs must never stall
  so.default_node_budget = 20000;
  Server server{so};
  const JsonLimits parse_limits;  // for validating responses

  constexpr int kIterations = 12000;
  int valid = 0, hostile = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::string line;
    if (rng.chance(0.25)) {
      line = valid_inline_select(rng, i);
      ++valid;
    } else {
      line = hostile_line(rng, i);
      ++hostile;
    }
    const std::string resp =
        server.handle_line(line, rng.uniform_int(0, 40));
    // The response itself must be one well-formed JSON object with a
    // definite verdict — parsed by the same strict parser clients use.
    const JsonParseResult parsed = json_parse(resp, parse_limits);
    ASSERT_TRUE(parsed.ok()) << "bad response for input [" << line
                             << "]: " << resp << " (" << parsed.error << ")";
    const Json* ok = parsed.value.find("ok");
    ASSERT_NE(ok, nullptr) << resp;
    if (!ok->as_bool()) {
      const Json* err = parsed.value.find("error");
      ASSERT_NE(err, nullptr) << resp;
      EXPECT_NE(err->find("code"), nullptr) << resp;
    }
  }
  EXPECT_GT(valid, kIterations / 6);
  EXPECT_GT(hostile, kIterations / 2);
  EXPECT_EQ(server.stats().internal_errors, 0u)
      << "isolation caught exceptions; decode should have rejected instead";
  EXPECT_GT(server.stats().solved + server.stats().cache_hits, 0u);
  EXPECT_GT(server.stats().parse_errors, 0u);
  EXPECT_GT(server.stats().bad_requests, 0u);
}

TEST(ServeFuzz, DecoderAloneOnTrafficGeneratorStream) {
  // The shared traffic generator (used by the CI soak) through the decoder:
  // decode_request is total on every class it emits.
  util::Rng rng(7);
  const RequestLimits limits;
  for (int i = 0; i < 3000; ++i) {
    const std::string line = make_traffic_line(rng, i);
    const DecodeResult dr = decode_request(line, limits);
    if (const auto* err = std::get_if<DecodeError>(&dr))
      EXPECT_FALSE(err->message.empty()) << line;
  }
}

TEST(ServeFuzz, ParserRoundTripsItsOwnRenderings) {
  // Renderings produced by the protocol layer must parse under the strict
  // limits — the server's own output is never in the error class.
  util::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::string err = render_error(
        random_bytes(rng, 40), ErrorCode::kBadRequest,
        random_bytes(rng, 80), rng.chance(0.5) ? rng.uniform_int(1, 5000) : -1);
    EXPECT_TRUE(json_parse(err).ok()) << err;
  }
}

}  // namespace
}  // namespace isex::serve
