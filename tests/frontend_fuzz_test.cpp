// Fuzz harness for the untrusted-binary frontend. The contract under test is
// *totality*: every byte stream — random garbage, a mutated fixture ELF, a
// truncated image, a random instruction stream — must come back as either a
// lifted program or a typed FrontendError, with no crash, no hang (budgets
// bound the work), no sanitizer finding, and never the kInternal error code
// (kInternal means a certify cross-check caught the lifter emitting an
// ill-formed program, which would be a frontend bug, not an input problem).
// The corpus is seeded and deterministic: >= 16k inputs per the acceptance
// bar, identical on every run, so a failure here is reproducible by seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "isex/certify/dfg.hpp"
#include "isex/frontend/elf.hpp"
#include "isex/frontend/fixtures.hpp"
#include "isex/frontend/lift.hpp"
#include "isex/robust/budget.hpp"
#include "isex/util/rng.hpp"

namespace isex::frontend {
namespace {

/// Small limits so even adversarial inputs finish fast; the fuzz loop runs
/// tens of thousands of lifts and must stay inside the test timeout under
/// sanitizers.
FrontendLimits fuzz_limits() {
  FrontendLimits lim;
  lim.max_file_bytes = 1u << 16;
  lim.max_text_bytes = 1u << 14;
  lim.max_instructions = 4096;
  lim.max_blocks = 1024;
  lim.max_nodes_per_block = 4096;
  lim.max_total_nodes = 1u << 14;
  return lim;
}

/// Feeds one input through the full pipeline and enforces the totality
/// contract. Returns the error code (or kCount-like sentinel for success)
/// so callers can histogram outcomes.
std::string run_one(const std::vector<std::uint8_t>& bytes, bool raw,
                    std::map<std::string, long>* outcomes) {
  LiftOptions lo;
  lo.limits = fuzz_limits();
  robust::Budget budget;
  budget.set_node_budget(1 << 18);
  lo.budget = &budget;
  const LiftResult r =
      raw ? lift_raw(bytes, 0x10000, "fuzz", lo) : lift_elf(bytes, "fuzz", lo);
  std::string key;
  if (std::holds_alternative<Lifted>(r)) {
    key = "ok";
    // A lifted result must hold up to the independent witness even when the
    // input was hostile — acceptance is the dangerous path, not rejection.
    const auto rep = certify::check_program(std::get<Lifted>(r).program);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  } else {
    const FrontendError& e = std::get<FrontendError>(r);
    key = to_string(e.code);
    EXPECT_NE(e.code, FrontendErrorCode::kInternal)
        << "internal error on fuzz input: " << e.render();
    EXPECT_FALSE(e.message.empty()) << to_string(e.code);
  }
  ++(*outcomes)[key];
  return key;
}

TEST(FrontendFuzz, RandomBytes) {
  // Pure noise, both as would-be ELFs and as raw instruction streams.
  util::Rng rng(0xF000001);
  std::map<std::string, long> outcomes;
  for (int i = 0; i < 4000; ++i) {
    const int n = rng.uniform_int(0, 512);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
    for (auto& b : bytes)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    run_one(bytes, /*raw=*/(i & 1) != 0, &outcomes);
  }
  EXPECT_GT(outcomes["not_elf"], 0);  // garbage must be *rejected*, not lifted
}

TEST(FrontendFuzz, MutatedFixtureElves) {
  // Point mutations over real images: the parser sees almost-valid headers,
  // section tables with one flipped byte, segment sizes off by one bit.
  util::Rng rng(0xF000002);
  std::map<std::string, long> outcomes;
  const auto& fx = fixtures();
  for (int i = 0; i < 6000; ++i) {
    std::vector<std::uint8_t> img =
        fx[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(fx.size()) - 1))].elf;
    const int flips = rng.uniform_int(1, 8);
    for (int k = 0; k < flips; ++k) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(img.size()) - 1));
      if (rng.chance(0.5))
        img[pos] ^= static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
      else
        img[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    run_one(img, /*raw=*/false, &outcomes);
  }
  // Mutations far from the headers leave a parseable image: both acceptance
  // and every rejection flavor must appear, and nothing internal.
  EXPECT_GT(outcomes["ok"], 0);
  EXPECT_GT(outcomes["not_elf"] + outcomes["bad_elf"], 0);
  EXPECT_EQ(outcomes["internal"], 0);
}

TEST(FrontendFuzz, TruncatedFixtureElves) {
  // Every prefix family: cut inside the ident, the header, the program
  // headers, the text, the section table.
  util::Rng rng(0xF000003);
  std::map<std::string, long> outcomes;
  const auto& fx = fixtures();
  for (int i = 0; i < 3000; ++i) {
    const auto& img =
        fx[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(fx.size()) - 1))].elf;
    const auto keep = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(img.size())));
    std::vector<std::uint8_t> cut(img.begin(),
                                  img.begin() + static_cast<std::ptrdiff_t>(keep));
    // Occasionally pad the tail with noise instead of cutting clean.
    if (rng.chance(0.25)) {
      const int pad = rng.uniform_int(1, 64);
      for (int k = 0; k < pad; ++k)
        cut.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    run_one(cut, /*raw=*/false, &outcomes);
  }
  EXPECT_EQ(outcomes["internal"], 0);
}

TEST(FrontendFuzz, RandomInstructionStreams) {
  // The decoder/CFG/lifter path without ELF framing: words drawn from three
  // distributions — uniform noise, legal-biased (valid major opcodes with
  // random fields), and fixture words spliced with noise.
  util::Rng rng(0xF000004);
  std::map<std::string, long> outcomes;
  const auto crc_words = encode_all(fixtures()[0].insts);
  for (int i = 0; i < 5000; ++i) {
    const int n = rng.uniform_int(1, 96);
    std::vector<std::uint8_t> bytes;
    const int mode = rng.uniform_int(0, 2);
    for (int k = 0; k < n; ++k) {
      std::uint32_t w;
      if (mode == 0) {
        w = static_cast<std::uint32_t>(rng.uniform_i64(0, 0xffffffffll));
      } else if (mode == 1) {
        // Legal-biased: a real major opcode, random upper fields.
        static const std::uint32_t kMajors[] = {0x37, 0x17, 0x6f, 0x67, 0x63,
                                                0x03, 0x23, 0x13, 0x33, 0x73};
        w = (static_cast<std::uint32_t>(rng.uniform_i64(0, 0xffffffffll))
             & ~0x7fu) |
            kMajors[rng.uniform_int(0, 9)];
      } else {
        w = rng.chance(0.7)
                ? crc_words[static_cast<std::size_t>(rng.uniform_int(
                      0, static_cast<int>(crc_words.size()) - 1))]
                : static_cast<std::uint32_t>(rng.uniform_i64(0, 0xffffffffll));
      }
      for (int b = 0; b < 4; ++b)
        bytes.push_back(static_cast<std::uint8_t>(w >> (8 * b)));
    }
    // Sometimes leave a ragged tail so the 4-byte grid has a remainder.
    if (rng.chance(0.3)) {
      const int rag = rng.uniform_int(1, 3);
      for (int k = 0; k < rag; ++k)
        bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    run_one(bytes, /*raw=*/true, &outcomes);
  }
  EXPECT_GT(outcomes["ok"], 0);  // raw streams always decode (totality)
  EXPECT_EQ(outcomes["internal"], 0);
}

TEST(FrontendFuzz, HandCraftedHostileHeaders) {
  // Deterministic regression corpus for the overflow arithmetic: offsets and
  // sizes chosen to wrap 32-bit sums, spans that overlap, tables that point
  // at themselves. Each entry patches one field of a valid fixture image.
  const std::vector<std::uint8_t>& good = fixtures()[0].elf;
  std::map<std::string, long> outcomes;
  struct Patch {
    std::size_t off;
    std::uint32_t value;
  };
  const std::vector<std::vector<Patch>> cases = {
      {{32, 0xfffffff0u}},              // e_shoff near UINT32_MAX
      {{28, 0xffffffffu}},              // e_phoff = UINT32_MAX
      {{28, 0x00000001u}},              // e_phoff overlapping the ident
      {{32, 0x00000034u}},              // shdrs aliasing the phdrs
      {{24, 0xffffffffu}},              // e_entry garbage (harmless)
      {{44, 0xffff0040u}},              // e_phnum/e_shentsize corrupted
      {{48, 0xffffffffu}},              // e_shnum/e_shstrndx corrupted
  };
  for (const auto& patches : cases) {
    std::vector<std::uint8_t> img = good;
    for (const Patch& p : patches) {
      if (p.off + 4 > img.size()) continue;
      for (int b = 0; b < 4; ++b)
        img[p.off + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(p.value >> (8 * b));
    }
    run_one(img, /*raw=*/false, &outcomes);
  }
  // Exhaustive single-byte corruption of the 52-byte ELF header: every
  // possible value in every header position, ~13k additional inputs.
  for (std::size_t off = 0; off < 52; ++off) {
    for (int v = 0; v < 256; ++v) {
      std::vector<std::uint8_t> img = good;
      img[off] = static_cast<std::uint8_t>(v);
      run_one(img, /*raw=*/false, &outcomes);
    }
  }
  EXPECT_EQ(outcomes["internal"], 0);
  EXPECT_GT(outcomes["ok"], 0);  // the identity corruption (same byte) lifts
}

TEST(FrontendFuzz, BudgetedLiftsAlwaysTerminateTyped) {
  // Tiny budgets over valid images: exhaustion must surface as kBudget (a
  // typed refusal), never as a crash, a partial program, or kInternal.
  util::Rng rng(0xF000005);
  const auto& fx = fixtures();
  int budget_hits = 0;
  for (int i = 0; i < 500; ++i) {
    const auto& f =
        fx[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(fx.size()) - 1))];
    robust::Budget budget;
    budget.set_node_budget(rng.uniform_int(0, 40));
    LiftOptions lo;
    lo.budget = &budget;
    const LiftResult r = lift_elf(f.elf, f.name, lo);
    if (std::holds_alternative<FrontendError>(r)) {
      const FrontendError& e = std::get<FrontendError>(r);
      EXPECT_EQ(e.code, FrontendErrorCode::kBudget) << e.render();
      ++budget_hits;
    } else {
      EXPECT_TRUE(certify::check_program(std::get<Lifted>(r).program).ok());
    }
  }
  EXPECT_GT(budget_hits, 0);
}

}  // namespace
}  // namespace isex::frontend
