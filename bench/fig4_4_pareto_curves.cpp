// Fig 4.4: the exact and epsilon-approximate Pareto curves for
// (a) the workload-area space of g721decode and (b) the utilization-area
// space of task set 1, at eps = 0.69 and eps = 3.
//
// Paper shapes: the approximate curves hug the exact staircase from above
// within factor (1+eps); point counts shrink dramatically (Pe has ~97% fewer
// points than the exact curve even at small eps); larger eps -> coarser
// curve and wider gap.
#include <cstdio>

#include "isex/pareto/inter.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

constexpr double kGrid = 0.05;

void load(const std::string& name, std::vector<pareto::Item>* items,
          double* base) {
  const auto& lib = hw::CellLibrary::standard_018um();
  auto prog = workloads::make_benchmark(name);
  const auto counts = prog.wcet_counts(ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
  const auto raw =
      select::selection_items(prog, counts, lib, select::CurveOptions{});
  std::vector<std::pair<double, double>> ag;
  for (const auto& it : raw) ag.emplace_back(it.area, it.gain);
  *items = pareto::quantize_items(ag, kGrid);
  *base = select::base_cycles(prog, counts, lib);
}

void print_front(const char* label, const pareto::Front& f, int max_rows) {
  std::printf("%s (%zu points):\n", label, f.size());
  util::Table t({"cost(grid units)", "value"});
  const int step = std::max(1, static_cast<int>(f.size()) / max_rows);
  for (std::size_t i = 0; i < f.size(); i += static_cast<std::size_t>(step))
    t.row().cell(f[i].cost, 0).cell(f[i].value, 4);
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Fig 4.4(a): workload-area fronts, g721decode ===\n\n");
  std::vector<pareto::Item> items;
  double base = 0;
  load("g721decode", &items, &base);
  const auto exact = pareto::exact_workload_front(items, base);
  print_front("exact", exact, 12);
  for (double eps : {0.69, 3.0}) {
    const auto approx = pareto::approx_workload_front(items, base, eps);
    char label[64];
    std::snprintf(label, sizeof label,
                  "eps=%.2f  (cover=%s, %.1f%% fewer points)", eps,
                  pareto::eps_covers(exact, approx, eps) ? "yes" : "NO",
                  100.0 * (1.0 - static_cast<double>(approx.size()) /
                                     static_cast<double>(exact.size())));
    print_front(label, approx, 12);
  }

  std::printf("=== Fig 4.4(b): utilization-area fronts, task set 1 ===\n\n");
  std::vector<pareto::TaskMenu> menus;
  for (const auto& name : workloads::ch4_tasksets()[0]) {
    std::vector<pareto::Item> ti;
    double tb = 0;
    load(name, &ti, &tb);
    menus.push_back(pareto::menu_from_front(
        pareto::exact_workload_front(ti, tb), tb * 6));
  }
  const auto exact_u = pareto::exact_utilization_front(menus);
  print_front("exact", exact_u, 12);
  for (double eps : {0.69, 3.0}) {
    const auto approx = pareto::approx_utilization_front(menus, eps);
    char label[64];
    std::snprintf(label, sizeof label,
                  "eps=%.2f  (cover=%s, %.1f%% fewer points)", eps,
                  pareto::eps_covers(exact_u, approx, eps) ? "yes" : "NO",
                  100.0 * (1.0 - static_cast<double>(approx.size()) /
                                     static_cast<double>(exact_u.size())));
    print_front(label, approx, 12);
  }
  return 0;
}
