// Extension: budget-stress sweep over every budget-bounded solver.
//
// Drives the robust:: execution-budget layer with adversarial synthetic
// inputs (wide DP tables, deep branch-and-bound trees, dense DFGs) under a
// deliberately tight budget, and checks the anytime-result contract on every
// run:
//   * the returned status is Exact, BudgetTruncated, or Degraded — never a
//     crash, an exception, or a spurious Infeasible on a feasible input;
//   * the run terminates within 2x the wall-clock budget (plus a fixed
//     scheduling-noise allowance) even though the solvers are worst-case
//     exponential;
//   * the incumbent is feasible: selection assignments respect the area
//     budget, gaps are non-negative, and Exact results report gap 0.
//
// The CI budget-stress job runs this with a tight --time-budget and fails on
// any violated check (nonzero exit = number of failed runs). With --paranoid
// every incumbent must additionally carry a passing witness certificate
// (independent checkers from isex::certify), proving the anytime layer never
// hands back a corrupt result even when starved.
//
// Usage: ext_budget_stress [--time-budget 20ms] [--node-budget 50K]
//                          [--trials N] [--csv out.csv] [--paranoid]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "isex/certify/ci.hpp"
#include "isex/certify/schedule.hpp"
#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/ise/single_cut.hpp"
#include "isex/robust/fallback.hpp"
#include "isex/rtreconfig/algorithms.hpp"
#include "isex/util/rng.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"

using namespace isex;

namespace {

/// Adversarial synthetic task set: long configuration curves and large
/// periods make the EDF DP table wide and the RMS branch-and-bound deep.
rt::TaskSet adversarial_taskset(util::Rng& rng, int num_tasks,
                                int num_configs) {
  rt::TaskSet ts;
  for (int i = 0; i < num_tasks; ++i) {
    rt::Task t;
    t.name = "T" + std::to_string(i);
    const double sw = rng.uniform_int(2000, 40000);
    t.period = sw * rng.uniform_real(1.2, 4.0);
    t.configs.push_back({0, sw});
    double area = 0, cycles = sw;
    for (int j = 1; j < num_configs; ++j) {
      area += rng.uniform_real(0.5, 7.0);
      cycles *= rng.uniform_real(0.82, 0.97);
      t.configs.push_back({area, std::max(1.0, std::floor(cycles))});
    }
    ts.tasks.push_back(std::move(t));
  }
  ts.sort_by_period();
  return ts;
}

/// Dense random DAG of valid ops only: worst case for the connected-subgraph
/// enumeration (no invalid separators to cut the search space).
ir::Dfg adversarial_dfg(util::Rng& rng, int num_inputs, int num_ops) {
  using ir::Opcode;
  static constexpr Opcode kOps[] = {Opcode::kAdd, Opcode::kSub, Opcode::kAnd,
                                    Opcode::kOr,  Opcode::kXor, Opcode::kShl};
  ir::Dfg dfg;
  std::vector<ir::NodeId> producers;
  for (int i = 0; i < num_inputs; ++i)
    producers.push_back(dfg.add(Opcode::kInput));
  for (int i = 0; i < num_ops; ++i) {
    const Opcode op = kOps[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    // Bias operands toward recent producers: deep, well-connected DAGs.
    std::vector<ir::NodeId> operands;
    for (int a = 0; a < 2; ++a) {
      const int lo = std::max(0, static_cast<int>(producers.size()) - 24);
      operands.push_back(producers[static_cast<std::size_t>(
          rng.uniform_int(lo, static_cast<int>(producers.size()) - 1))]);
    }
    producers.push_back(dfg.add(op, std::move(operands)));
  }
  for (int i = 0; i < dfg.num_nodes(); ++i)
    if (ir::produces_value(dfg.node(i).op) && dfg.node(i).consumers.empty())
      dfg.mark_live_out(i);
  return dfg;
}

rtreconfig::Problem adversarial_problem(util::Rng& rng, int n) {
  rtreconfig::Problem p;
  p.max_area = 40;
  p.reconfig_cost = 500;
  p.area_grid = 0.25;  // fine grid: wide DP per k
  for (int i = 0; i < n; ++i) {
    rtreconfig::TaskCis t;
    t.name = "L" + std::to_string(i);
    const double sw = rng.uniform_int(5000, 80000);
    t.period = sw * rng.uniform_real(1.5, 5.0);
    t.versions.push_back({0, sw});
    double area = 0, cycles = sw;
    for (int j = 0; j < 6; ++j) {
      area += rng.uniform_real(2.0, 12.0);
      cycles *= rng.uniform_real(0.7, 0.95);
      t.versions.push_back({area, std::floor(cycles)});
    }
    p.tasks.push_back(std::move(t));
  }
  return p;
}

struct Run {
  std::string solver;
  int instance = 0;
  robust::Status status = robust::Status::kExact;
  double gap = 0;
  double wall_seconds = 0;
  long nodes = 0;
  std::string why;  // first violated check, empty when ok

  bool ok() const { return why.empty(); }
};

double parse_time_spec(const std::string& s) {
  if (s.size() > 2 && s.compare(s.size() - 2, 2, "ms") == 0)
    return std::stod(s.substr(0, s.size() - 2)) * 1e-3;
  if (s.size() > 1 && s.back() == 's') return std::stod(s.substr(0, s.size() - 1));
  return std::stod(s);
}

long parse_count_spec(const std::string& s) {
  long scale = 1;
  std::string num = s;
  if (!s.empty() && (s.back() == 'K' || s.back() == 'k')) scale = 1000;
  if (!s.empty() && (s.back() == 'M' || s.back() == 'm')) scale = 1000000;
  if (scale != 1) num = s.substr(0, s.size() - 1);
  return static_cast<long>(std::stod(num) * static_cast<double>(scale));
}

}  // namespace

int main(int argc, char** argv) {
  double time_budget = 0.02;  // 20 ms: tight enough to truncate everything
  long node_budget = -1;
  int trials = 4;
  bool paranoid = false;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (a == "--time-budget") time_budget = parse_time_spec(next());
    else if (a == "--node-budget") node_budget = parse_count_spec(next());
    else if (a == "--trials") trials = std::stoi(next());
    else if (a == "--csv") csv_path = next();
    else if (a == "--paranoid") paranoid = true;
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
      return 2;
    }
  }
  // 2x the budget for the ladder (primary + sliced retries) plus a fixed
  // allowance for scheduler noise, the unbudgeted linear rungs, and the
  // coarse time-check stride. Certification is not budget-charged (it runs
  // after the solver hands back its answer), so paranoid mode widens the
  // allowance rather than the budget-proportional factor.
  const double wall_cap = 2 * time_budget + (paranoid ? 2.0 : 0.25);

  std::vector<Run> runs;
  auto checked = [&](Run r, bool feasible, const char* feasible_why,
                     bool certified = true) {
    if (r.status == robust::Status::kInfeasible)
      r.why = "Infeasible on a feasible input";
    else if (r.wall_seconds > wall_cap)
      r.why = "overran 2x wall budget";
    else if (r.gap < 0)
      r.why = "negative optimality gap";
    else if (r.status == robust::Status::kExact && r.gap != 0)
      r.why = "Exact with nonzero gap";
    else if (!feasible)
      r.why = feasible_why;
    else if (!certified)
      r.why = "witness checker rejected the result";
    runs.push_back(std::move(r));
  };

  auto make_budget = [&]() {
    robust::Budget b;
    b.set_time_budget(time_budget);
    if (node_budget >= 0) b.set_node_budget(node_budget);
    return b;
  };

  for (int trial = 0; trial < trials; ++trial) {
    util::Rng rng(0xB0D6E7u + static_cast<std::uint64_t>(trial) * 7919);

    {  // EDF selection ladder: 48 tasks x 24 configs, 0.05-adder grid.
      auto ts = adversarial_taskset(rng, 48, 24);
      customize::EdfOptions eo;
      eo.area_grid = 0.05;
      const double area = 0.6 * ts.max_area();
      robust::Budget b = make_budget();
      util::Stopwatch sw;
      const auto out = robust::select_edf_with_fallback(ts, area, eo, &b);
      Run r{"select_edf", trial, out.status, out.optimality_gap, sw.seconds(),
            out.budget.nodes_charged, ""};
      const bool feasible =
          out.value.assignment.size() == ts.size() &&
          out.value.area_used <= area + 1e-6;
      checked(std::move(r), feasible, "assignment violates area budget",
              !paranoid || out.certified());
    }

    {  // RMS selection ladder: 14 tasks x 12 configs blows up the B&B.
      // Rescale periods so the all-software assignment passes Liu-Layland
      // (U_sw = 0.68 < ln 2): the instance is provably feasible at zero
      // area, so any Infeasible answer is a real contract violation, while
      // minimizing utilization over 12^14 assignments stays adversarial.
      auto ts = adversarial_taskset(rng, 14, 12);
      double u_sw = 0;
      for (const auto& t : ts.tasks) u_sw += t.sw_cycles() / t.period;
      for (auto& t : ts.tasks) t.period *= u_sw / 0.68;
      const double area = 0.5 * ts.max_area();
      robust::Budget b = make_budget();
      util::Stopwatch sw;
      const auto out =
          robust::select_rms_with_fallback(ts, area, customize::RmsOptions{}, &b);
      Run r{"select_rms", trial, out.status, out.optimality_gap, sw.seconds(),
            out.budget.nodes_charged, ""};
      const bool feasible =
          out.value.assignment.size() == ts.size() &&
          out.value.area_used <= area + 1e-6;
      checked(std::move(r), feasible, "assignment violates area budget",
              !paranoid || out.certified());
    }

    {  // Enumeration ladder: dense 360-op DFG, no invalid separators.
      const auto dfg = adversarial_dfg(rng, 10, 360);
      const auto& lib = hw::CellLibrary::standard_018um();
      robust::FallbackOptions fb;
      if (paranoid) fb.certify_pool_cap = -1;  // certify every candidate
      robust::Budget b = make_budget();
      util::Stopwatch sw;
      const auto out = robust::enumerate_with_fallback(
          dfg, lib, ise::EnumOptions{}, &b, 0, 1, fb);
      Run r{"enumerate", trial, out.status, out.optimality_gap, sw.seconds(),
            out.budget.nodes_charged, ""};
      checked(std::move(r), true, "", !paranoid || out.certified());
    }

    {  // Optimal single cut on the same dense DFG.
      const auto dfg = adversarial_dfg(rng, 10, 360);
      const auto& lib = hw::CellLibrary::standard_018um();
      ise::SingleCutOptions so;
      robust::Budget b = make_budget();
      so.budget = &b;
      util::Stopwatch sw;
      const auto res = ise::optimal_single_cut(dfg, lib, so);
      Run r{"single_cut", trial, res.status, res.optimality_gap, sw.seconds(),
            b.report().nodes_charged, ""};
      bool certified = true;
      if (paranoid && res.best)
        certified =
            certify::check_candidate(dfg, lib, so.constraints, *res.best).ok();
      checked(std::move(r), true, "", certified);
    }

    {  // Reconfiguration DP sweep: 40 loops, fine grid.
      const auto p = adversarial_problem(rng, 40);
      robust::Budget b = make_budget();
      util::Stopwatch sw;
      const auto out = rtreconfig::dp_partition_bounded(p, &b);
      Run r{"rtreconfig_dp", trial, out.status, out.optimality_gap,
            sw.seconds(), out.budget.nodes_charged, ""};
      const bool feasible = std::isfinite(out.value.utilization) &&
                            out.value.version.size() == p.tasks.size();
      checked(std::move(r), feasible, "non-finite or malformed solution",
              !paranoid || certify::check_rtreconfig(p, out.value).ok());
    }

    {  // Reconfiguration branch-and-bound: 12 loops is already exponential.
      const auto p = adversarial_problem(rng, 12);
      robust::Budget b = make_budget();
      util::Stopwatch sw;
      const auto res = rtreconfig::optimal_partition(p, -1, &b);
      Run r{"rtreconfig_bnb", trial, res.status, res.optimality_gap,
            sw.seconds(), b.report().nodes_charged, ""};
      const bool feasible = std::isfinite(res.solution.utilization) &&
                            res.solution.version.size() == p.tasks.size();
      checked(std::move(r), feasible, "non-finite or malformed solution",
              !paranoid || certify::check_rtreconfig(p, res.solution).ok());
    }
  }

  util::Table t({"solver", "trial", "status", "gap", "wall(s)", "nodes",
                 "check"});
  int failures = 0;
  for (const auto& r : runs) {
    if (!r.ok()) ++failures;
    t.row()
        .cell(r.solver)
        .cell(r.instance)
        .cell(robust::to_string(r.status))
        .cell(r.gap, 4)
        .cell(r.wall_seconds, 4)
        .cell(r.nodes)
        .cell(r.ok() ? "ok" : r.why);
  }
  t.print();
  std::printf("\n%zu runs under a %.0f ms budget (wall cap %.0f ms%s): "
              "%d failure(s)\n",
              runs.size(), time_budget * 1e3, wall_cap * 1e3,
              paranoid ? ", paranoid" : "", failures);

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   csv_path.c_str());
      return 2;
    }
    out << "solver,trial,status,gap,wall_seconds,nodes,ok,why\n";
    for (const auto& r : runs)
      out << r.solver << ',' << r.instance << ','
          << robust::to_string(r.status) << ',' << r.gap << ','
          << r.wall_seconds << ',' << r.nodes << ',' << (r.ok() ? 1 : 0)
          << ',' << r.why << '\n';
  }
  return failures == 0 ? 0 : 1;
}
