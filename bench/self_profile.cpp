// Self-profiler: runs the full toolchain (curve construction -> selection ->
// schedule simulation) over the 18 kernels of the thesis' Table 5.1 pool and
// emits a machine-readable per-kernel, per-phase report of wall time and the
// obs counters each phase produced. The JSON seeds BENCH_self_profile.json so
// CI and later sessions can diff enumeration/selection effort regressions,
// not just end-to-end time.
//
//   self_profile [out.json]      (default BENCH_self_profile.json)
//
// Exit code 0 when every kernel profiled, 1 otherwise.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "isex/customize/select_edf.hpp"
#include "isex/faults/sensitivity.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/obs/provenance.hpp"
#include "isex/obs/trace.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

// The 18 kernels of the thesis' Table 5.1 benchmark pool.
const char* kKernels[] = {
    "crc32",      "sha",       "blowfish", "rijndael", "susan",    "adpcm_enc",
    "adpcm_dec",  "cjpeg",     "djpeg",    "g721encode", "g721decode",
    "jfdctint",   "ndes",      "edn",      "lms",      "compress", "aes",
    "3des",
};

struct Phase {
  std::string name;
  double seconds = 0;
  // Counter deltas attributed to this phase (registry diff across the phase).
  std::map<std::string, std::uint64_t> counters;
};

std::map<std::string, std::uint64_t> counter_delta(
    const obs::Registry::Snapshot& before, const obs::Registry::Snapshot& after) {
  std::map<std::string, std::uint64_t> d;
  for (const auto& [name, v] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t prev = it == before.counters.end() ? 0 : it->second;
    if (v > prev) d[name] = v - prev;
  }
  return d;
}

void write_phase(std::ostream& out, const Phase& p, bool last) {
  out << "      {\"phase\": \"" << obs::json_escape(p.name)
      << "\", \"seconds\": " << p.seconds << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : p.counters) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << obs::json_escape(name) << "\": " << v;
  }
  out << "}}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_self_profile.json";
  auto& reg = obs::Registry::global();

  struct KernelReport {
    std::string name;
    std::vector<Phase> phases;
    double total_seconds = 0;
    double sw_cycles = 0, best_cycles = 0;
    std::size_t configs = 0;
  };
  std::vector<KernelReport> reports;

  for (const char* kernel : kKernels) {
    KernelReport rep;
    rep.name = kernel;
    util::Stopwatch total;

    // Phase 1: curve construction (enumeration + knapsack) — the dominant
    // analysis cost. cached_task() builds on first touch; kernels are unique
    // here so every iteration pays the full build.
    auto before = reg.snapshot();
    util::Stopwatch sw;
    const auto& task = workloads::cached_task(kernel);
    Phase curve{"curve", sw.seconds(), counter_delta(before, reg.snapshot())};
    rep.sw_cycles = task.sw_cycles();
    rep.best_cycles = task.best_cycles();
    rep.configs = task.configs.size();

    // Phase 2: EDF selection over a single-kernel task set.
    before = reg.snapshot();
    sw.restart();
    auto ts = workloads::make_taskset({kernel}, 0.9);
    const auto sel = customize::select_edf(ts, 0.5 * ts.max_area());
    Phase select{"select", sw.seconds(), counter_delta(before, reg.snapshot())};

    // Phase 3: schedule simulation of the selected configuration.
    before = reg.snapshot();
    sw.restart();
    const auto sim_tasks = faults::to_sim_tasks(ts, sel.assignment);
    rt::SimOptions so;
    for (const auto& s : sim_tasks)
      so.horizon = std::max(so.horizon, 64 * s.period);
    const auto r = rt::simulate(sim_tasks, so);
    Phase sim{"simulate", sw.seconds(), counter_delta(before, reg.snapshot())};
    sim.counters["rt.sim.all_met"] = r.all_met ? 1 : 0;

    rep.total_seconds = total.seconds();
    rep.phases = {std::move(curve), std::move(select), std::move(sim)};
    reports.push_back(std::move(rep));
    std::printf("%-12s curve %7.3fs  select %7.3fs  simulate %7.3fs\n", kernel,
                reports.back().phases[0].seconds,
                reports.back().phases[1].seconds,
                reports.back().phases[2].seconds);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open '%s'\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"tool\": \"self_profile\",\n  \"provenance\": ";
  obs::write_provenance_json(out, obs::collect_provenance());
  out << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& rep = reports[i];
    out << "    {\"name\": \"" << obs::json_escape(rep.name)
        << "\", \"total_seconds\": " << rep.total_seconds
        << ", \"sw_cycles\": " << rep.sw_cycles
        << ", \"best_cycles\": " << rep.best_cycles
        << ", \"configs\": " << rep.configs << ", \"phases\": [\n";
    for (std::size_t p = 0; p < rep.phases.size(); ++p)
      write_phase(out, rep.phases[p], p + 1 == rep.phases.size());
    out << "    ]}" << (i + 1 == reports.size() ? "" : ",") << "\n";
  }
  out << "  ],\n  \"registry\": ";
  reg.write_json(out);
  out << "\n}\n";
  std::printf("wrote %s (%zu kernels)\n", out_path.c_str(), reports.size());
  return reports.size() == std::size(kKernels) ? 0 : 1;
}
