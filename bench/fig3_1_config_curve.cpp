// Fig 3.1: application performance versus hardware area for the processor
// configurations of the g721 decoding task.
//
// Paper shape: a monotone staircase from ~3.04e8 cycles at zero area down to
// ~2.88e8 cycles around 100 adders, flattening as the candidate library
// saturates. Our substrate reproduces the staircase; absolute cycle counts
// differ (synthetic kernel, different per-op model).
#include <cstdio>

#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  std::printf("=== Fig 3.1: configuration curve, g721 decode ===\n\n");
  const auto& task = workloads::cached_task("g721decode");
  util::Table t({"area(adders)", "cycles", "speedup", "util.reduction%"});
  const double base = task.sw_cycles();
  for (const auto& cfg : task.configs) {
    t.row()
        .cell(cfg.area, 1)
        .cell(cfg.cycles, 0)
        .cell(base / cfg.cycles, 3)
        .cell(100.0 * (1.0 - cfg.cycles / base), 2);
  }
  t.print();
  std::printf("\n%zu configurations; max speedup %.3fx at %.1f adders\n",
              task.configs.size(), base / task.best_cycles(),
              task.max_area());
  return 0;
}
