// Table 6.1: running time of exhaustive search, greedy search and the
// iterative partitioning algorithm on synthetic inputs of 5..100 hot loops.
//
// Paper shapes: exhaustive grows as the Bell numbers and becomes infeasible
// past ~12 loops (the paper stops it there); greedy stays in milliseconds;
// iterative scales polynomially (sub-minute at 100 loops on their machine).
#include <cstdio>

#include "isex/opt/set_partition.hpp"
#include "isex/reconfig/algorithms.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"

using namespace isex;

int main() {
  std::printf("=== Table 6.1: running time (seconds) on synthetic input ===\n\n");
  util::Table t({"hot loops", "exhaustive", "greedy", "iterative",
                 "bell(n)"});
  for (int n : {5, 6, 7, 8, 9, 10, 11, 12, 20, 40, 60, 80, 100}) {
    util::Rng gen(static_cast<std::uint64_t>(n) * 1009 + 7);
    const auto p = reconfig::synthetic_problem(n, gen);

    // The Bell-number blow-up makes a full enumeration impractical in a CI
    // bench (the paper spent 86338 s at n=12); a 150k-partition budget shows
    // the cliff honestly — the "(cut N)" entries did not finish.
    std::string ex_time = "n/a";
    if (n <= 12) {
      util::Stopwatch sw;
      const auto ex = reconfig::exhaustive_partition(p, 150'000);
      char buf[48];
      if (ex.completed)
        std::snprintf(buf, sizeof buf, "%.2f", sw.seconds());
      else
        std::snprintf(buf, sizeof buf, "%.2f (cut %llu)", sw.seconds(),
                      static_cast<unsigned long long>(ex.visited));
      ex_time = buf;
    }

    util::Stopwatch sw;
    reconfig::greedy_partition(p);
    const double t_greedy = sw.seconds();

    sw.restart();
    util::Rng rng(3);
    reconfig::iterative_partition(p, rng);
    const double t_iter = sw.seconds();

    char bell[32];
    std::snprintf(bell, sizeof bell, "%llu",
                  static_cast<unsigned long long>(opt::bell_number(n)));
    t.row()
        .cell(n)
        .cell(ex_time)
        .cell(t_greedy, 4)
        .cell(t_iter, 4)
        .cell(n <= 20 ? bell : ">1e13");
  }
  t.print();
  std::printf("\npaper: exhaustive 0.26 s at n=5 up to 86338 s at n=12, "
              "infeasible beyond; greedy 0.01-0.16 s; iterative 0.07-119 s\n");
  return 0;
}
