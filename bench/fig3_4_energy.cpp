// Fig 3.4: hardware area versus energy improvement for task set 3 under EDF
// and RMS with TM5400 static voltage scaling.
//
// Paper shapes: energy improvement grows with area (more slack -> lower
// operating point), EDF improvements dominate RMS (the RMS path must use the
// conservative Liu-Layland bound), and curves saturate once the lowest
// operating point is reached.
#include <cstdio>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/energy/dvfs.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

/// Energy of the first schedulable baseline at this utilization (the paper
/// compares against the first schedulable solution when the software-only
/// set is infeasible).
double baseline_energy(const rt::TaskSet& ts, bool edf, double h) {
  const std::vector<int> sw(ts.size(), 0);
  const auto scale = energy::static_voltage_scaling(ts, sw, edf);
  return energy::hyperperiod_energy(ts, sw, scale.point, h);
}

}  // namespace

int main() {
  std::printf("=== Fig 3.4: area vs energy improvement (task set 3) ===\n\n");
  const auto& names = workloads::ch3_tasksets()[2];
  const double h = 1e9;
  const double utils[] = {0.8, 1.0, 1.05};

  for (bool edf : {true, false}) {
    std::printf("--- %s policy ---\n", edf ? "EDF" : "RMS");
    util::Table t({"U0", "area/Max", "op.point", "energy.improv%"});
    for (double u0 : utils) {
      auto ts = workloads::make_taskset(names, u0);
      ts.sort_by_period();
      const double base_e = baseline_energy(ts, edf, h);
      // Fine steps at small budgets: that is where the exact EDF test and
      // the conservative RMS bound pick different operating points.
      for (double frac : {0.0, 0.02, 0.05, 0.1, 0.15, 0.25, 0.5, 0.75, 1.0}) {
        const double budget = frac * ts.max_area();
        const auto sel = edf ? customize::select_edf(ts, budget)
                             : static_cast<customize::SelectionResult>(
                                   customize::select_rms(ts, budget));
        const auto scale =
            energy::static_voltage_scaling(ts, sel.assignment, edf);
        const double e =
            energy::hyperperiod_energy(ts, sel.assignment, scale.point, h);
        char point[32];
        std::snprintf(point, sizeof point, "%3.0fMHz/%.2fV",
                      scale.point.freq_mhz, scale.point.volt);
        t.row()
            .cell(u0, 2)
            .cell(frac, 2)
            .cell(point)
            .cell(100.0 * (1.0 - e / base_e), 1);
      }
    }
    t.print();
    std::printf("\n");
  }
  std::printf("paper: up to 30%% energy reduction; EDF average 14%% vs RMS "
              "10%% at 75%% MaxArea\n");
  return 0;
}
