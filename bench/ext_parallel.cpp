// Extension: parallel solver-core scaling and byte-identity bench.
//
// For each kernel class the parallel work matters on (crc32, sha, aes,
// 3des), builds the full configuration curve — enumeration, per-block
// disjoint pools, knapsack — at 1, 2, 4 and 8 threads, and reports:
//   * wall time per thread count (best of --reps runs);
//   * speedup vs the 1-thread run and *scaling efficiency*, defined as
//     speedup / min(threads, num_cpus). On a multi-core runner this is the
//     usual per-core efficiency; on a 1-CPU machine every thread count has
//     denominator 1, so the bench degrades into a pure overhead/correctness
//     check instead of fabricating impossible speedups;
//   * byte_mismatches: the serialized curve (every area/cycles point printed
//     with full precision) at T threads is compared byte-for-byte against
//     the 1-thread curve. The parallel solver core promises byte-identical
//     results at any thread count, so this is always gated at zero.
// One RMS branch-and-bound selection over a 5-task set is byte-checked the
// same way (ts.size() >= 5 engages the parallel B&B).
//
// Writes BENCH_parallel.json (override with ISEX_BENCH_OUT) with provenance,
// so tools/bench_compare can gate efficiency and mismatches in CI.
//
// Usage: ext_parallel [--reps N] [--threads-list 1,2,4,8]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "isex/customize/select_rms.hpp"
#include "isex/hw/cell_library.hpp"
#include "isex/obs/provenance.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"
#include "isex/util/task_pool.hpp"
#include "isex/workloads/tasks.hpp"
#include "isex/workloads/workloads.hpp"

using namespace isex;

namespace {

const std::vector<std::string>& kernels() {
  static const std::vector<std::string> k = {"crc32", "sha", "aes", "3des"};
  return k;
}

select::CurveOptions curve_options(const ir::Program& prog) {
  // Mirror workloads::build_task's effort caps so the bench measures the
  // same work the toolchain actually runs.
  select::CurveOptions opts;
  int max_block = 0;
  for (const auto& b : prog.blocks())
    max_block = std::max(max_block, b.dfg.num_nodes());
  if (max_block > 600) {
    opts.enum_opts.max_candidates = 20000;
    opts.enum_opts.max_candidate_nodes = 16;
  } else {
    opts.enum_opts.max_candidates = 60000;
    opts.enum_opts.max_candidate_nodes = 24;
  }
  return opts;
}

std::string serialize_curve(const select::ConfigCurve& c) {
  std::string s;
  char buf[96];
  for (const auto& p : c.points) {
    std::snprintf(buf, sizeof buf, "%.17g,%.17g;", p.area, p.cycles);
    s += buf;
  }
  return s;
}

std::string serialize_selection(const customize::SelectionResult& r) {
  std::string s;
  char buf[96];
  for (int a : r.assignment) {
    std::snprintf(buf, sizeof buf, "%d;", a);
    s += buf;
  }
  std::snprintf(buf, sizeof buf, "U=%.17g,A=%.17g", r.utilization,
                r.area_used);
  return s + buf;
}

struct Point {
  int threads = 1;
  double wall_seconds = 0;
  double speedup = 1;
  double efficiency = 1;
  int byte_mismatches = 0;
};

struct KernelResult {
  std::string name;
  std::vector<Point> points;
};

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  std::vector<int> thread_list = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (a == "--reps") reps = std::stoi(next());
    else if (a == "--threads-list") {
      thread_list.clear();
      std::stringstream ss(next());
      for (std::string tok; std::getline(ss, tok, ',');)
        thread_list.push_back(std::stoi(tok));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
      return 2;
    }
  }
  if (reps < 1 || thread_list.empty() || thread_list.front() != 1) {
    std::fprintf(stderr, "--reps must be >= 1 and --threads-list must "
                         "start at 1 (the identity baseline)\n");
    return 2;
  }

  const auto& lib = hw::CellLibrary::standard_018um();
  const int ncpu = util::hardware_threads();
  std::vector<KernelResult> results;
  int total_mismatches = 0;

  for (const auto& name : kernels()) {
    const ir::Program prog = workloads::make_benchmark(name);
    const auto counts = prog.wcet_counts(ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
    const auto opts = curve_options(prog);

    KernelResult kr;
    kr.name = name;
    std::string baseline;
    double base_wall = 0;
    for (int t : thread_list) {
      util::set_max_threads(t);
      double best = 1e300;
      std::string serialized;
      for (int r = 0; r < reps; ++r) {
        util::Stopwatch sw;
        const auto curve = select::build_config_curve(prog, counts, lib, opts);
        best = std::min(best, sw.seconds());
        serialized = serialize_curve(curve);
      }
      Point p;
      p.threads = t;
      p.wall_seconds = best;
      if (t == 1) {
        baseline = serialized;
        base_wall = best;
      }
      p.speedup = best > 0 ? base_wall / best : 1;
      p.efficiency = p.speedup / static_cast<double>(std::min(t, ncpu));
      p.byte_mismatches = serialized == baseline ? 0 : 1;
      total_mismatches += p.byte_mismatches;
      kr.points.push_back(p);
    }
    results.push_back(std::move(kr));
  }

  // RMS B&B byte-identity on a 5-task set (>= 5 engages the parallel path).
  {
    util::set_max_threads(1);
    auto ts = workloads::make_taskset({"crc32", "sha", "aes", "adpcm_enc",
                                       "blowfish"},
                                      1.05);
    ts.sort_by_period();
    const double budget = 0.5 * ts.max_area();
    KernelResult kr;
    kr.name = "rms_select5";
    std::string baseline;
    double base_wall = 0;
    for (int t : thread_list) {
      util::set_max_threads(t);
      double best = 1e300;
      std::string serialized;
      for (int r = 0; r < reps; ++r) {
        util::Stopwatch sw;
        const auto sel = customize::select_rms(ts, budget);
        best = std::min(best, sw.seconds());
        serialized = serialize_selection(sel);
      }
      Point p;
      p.threads = t;
      p.wall_seconds = best;
      if (t == 1) {
        baseline = serialized;
        base_wall = best;
      }
      p.speedup = best > 0 ? base_wall / best : 1;
      p.efficiency = p.speedup / static_cast<double>(std::min(t, ncpu));
      p.byte_mismatches = serialized == baseline ? 0 : 1;
      total_mismatches += p.byte_mismatches;
      kr.points.push_back(p);
    }
    results.push_back(std::move(kr));
  }

  util::Table t({"kernel", "threads", "wall(s)", "speedup", "efficiency",
                 "identical"});
  for (const auto& kr : results)
    for (const auto& p : kr.points)
      t.row()
          .cell(kr.name)
          .cell(p.threads)
          .cell(p.wall_seconds, 4)
          .cell(p.speedup, 3)
          .cell(p.efficiency, 3)
          .cell(p.byte_mismatches == 0 ? "yes" : "NO");
  t.print();
  std::printf("\n%d cpu(s), %d byte mismatch(es) across all thread counts\n",
              ncpu, total_mismatches);

  const char* env = std::getenv("ISEX_BENCH_OUT");
  const std::string out_path = env && *env ? env : "BENCH_parallel.json";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open '%s'\n", out_path.c_str());
    return 2;
  }
  out << "{\n\"provenance\": ";
  obs::write_provenance_json(out, obs::collect_provenance());
  out << ",\n\"num_cpus\": " << ncpu << ",\n\"reps\": " << reps
      << ",\n\"kernels\": [\n";
  for (std::size_t k = 0; k < results.size(); ++k) {
    const auto& kr = results[k];
    out << "  {\"name\": \"" << kr.name << "\", \"points\": [";
    for (std::size_t i = 0; i < kr.points.size(); ++i) {
      const auto& p = kr.points[i];
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "{\"threads\": %d, \"wall_seconds\": %.6f, "
                    "\"speedup\": %.4f, \"efficiency\": %.4f, "
                    "\"byte_mismatches\": %d}",
                    p.threads, p.wall_seconds, p.speedup, p.efficiency,
                    p.byte_mismatches);
      out << buf << (i + 1 < kr.points.size() ? ", " : "");
    }
    out << "]}" << (k + 1 < results.size() ? ",\n" : "\n");
  }
  out << "],\n\"total_byte_mismatches\": " << total_mismatches << "\n}\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return total_mismatches == 0 ? 0 : 1;
}
