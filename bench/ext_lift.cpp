// Extension: untrusted-binary frontend throughput and work-counter bench.
//
// Two phases, both deterministic in everything except wall time:
//   * fixtures — lifts each hand-assembled ELF fixture in a tight loop
//     (parse + decode + CFG + DFG + certify cross-check per iteration) and
//     reports the per-phase work counters (instructions, blocks, nodes,
//     operations; these are pure functions of the fixture bytes and gate at
//     a tight drift band) plus lift throughput in instructions/second and
//     images/second;
//   * corpus — runs a seeded hostile corpus (random bytes, mutated fixture
//     images, truncated images) through lift_elf and reports the outcome
//     histogram (a pure function of the seed; internal errors gate at zero)
//     and structured-rejection throughput in inputs/second.
//
// Writes BENCH_lift.json (override with ISEX_BENCH_OUT) with a provenance
// block, so tools/bench_compare's `lift` mode can gate throughput and the
// deterministic counters in CI.
//
// Usage: ext_lift [--reps N] [--iters N] [--corpus N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "isex/certify/dfg.hpp"
#include "isex/frontend/fixtures.hpp"
#include "isex/frontend/lift.hpp"
#include "isex/obs/provenance.hpp"
#include "isex/util/rng.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"

using namespace isex;

namespace {

struct FixtureRow {
  std::string name;
  frontend::LiftStats stats;
  std::size_t image_bytes = 0;
  double wall_seconds = 0;  // best-of-reps for `iters` lifts
  double insts_per_sec = 0;
  double lifts_per_sec = 0;
};

struct CorpusRow {
  long inputs = 0;
  long ok = 0;
  long rejected = 0;
  long internal = 0;  // must be zero: the gate bench_compare enforces
  double wall_seconds = 0;
  double inputs_per_sec = 0;
};

/// The seeded hostile corpus: identical across runs, so the ok/rejected
/// split is a deterministic work counter, not a statistic.
std::vector<std::vector<std::uint8_t>> build_corpus(long n) {
  util::Rng rng(0x11F7);
  const auto& fx = frontend::fixtures();
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    const auto& img =
        fx[static_cast<std::size_t>(rng.uniform_int(
               0, static_cast<int>(fx.size()) - 1))].elf;
    std::vector<std::uint8_t> bytes;
    switch (rng.uniform_int(0, 2)) {
      case 0: {  // random garbage
        bytes.resize(static_cast<std::size_t>(rng.uniform_int(0, 256)));
        for (auto& b : bytes)
          b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        break;
      }
      case 1: {  // mutated fixture image
        bytes = img;
        const int flips = rng.uniform_int(1, 6);
        for (int k = 0; k < flips; ++k)
          bytes[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(bytes.size()) - 1))] ^=
              static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
        break;
      }
      default: {  // truncated fixture image
        const auto keep = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(img.size())));
        bytes.assign(img.begin(),
                     img.begin() + static_cast<std::ptrdiff_t>(keep));
        break;
      }
    }
    corpus.push_back(std::move(bytes));
  }
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  int iters = 2000;       // lifts per timing sample, per fixture
  long corpus_n = 4000;   // hostile inputs
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (a == "--reps") reps = std::stoi(next());
    else if (a == "--iters") iters = std::stoi(next());
    else if (a == "--corpus") corpus_n = std::stol(next());
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
      return 2;
    }
  }
  if (reps < 1 || iters < 1 || corpus_n < 1) {
    std::fprintf(stderr, "--reps, --iters and --corpus must be >= 1\n");
    return 2;
  }

  // --- phase 1: fixture lift throughput + work counters ---------------------
  std::vector<FixtureRow> rows;
  for (const auto& f : frontend::fixtures()) {
    FixtureRow row;
    row.name = f.name;
    row.image_bytes = f.elf.size();
    const frontend::LiftResult first =
        frontend::lift_elf(f.elf, f.name, frontend::LiftOptions{});
    if (!std::holds_alternative<frontend::Lifted>(first)) {
      std::fprintf(stderr, "error: fixture %s failed to lift: %s\n",
                   f.name.c_str(),
                   std::get<frontend::FrontendError>(first).render().c_str());
      return 1;
    }
    row.stats = std::get<frontend::Lifted>(first).stats;
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      util::Stopwatch sw;
      for (int it = 0; it < iters; ++it) {
        const frontend::LiftResult lr =
            frontend::lift_elf(f.elf, f.name, frontend::LiftOptions{});
        if (!std::holds_alternative<frontend::Lifted>(lr)) {
          std::fprintf(stderr, "error: fixture %s failed mid-loop\n",
                       f.name.c_str());
          return 1;
        }
      }
      best = std::min(best, sw.seconds());
    }
    row.wall_seconds = best;
    if (best > 0) {
      row.lifts_per_sec = iters / best;
      row.insts_per_sec = row.lifts_per_sec *
                          static_cast<double>(row.stats.decoded_instructions);
    }
    rows.push_back(std::move(row));
  }

  // --- phase 2: hostile-corpus rejection throughput --------------------------
  const auto corpus = build_corpus(corpus_n);
  CorpusRow cr;
  cr.inputs = corpus_n;
  double corpus_best = 1e300;
  for (int r = 0; r < reps; ++r) {
    long ok = 0, rejected = 0, internal = 0;
    util::Stopwatch sw;
    for (const auto& bytes : corpus) {
      const frontend::LiftResult lr =
          frontend::lift_elf(bytes, "corpus", frontend::LiftOptions{});
      if (std::holds_alternative<frontend::Lifted>(lr)) {
        ++ok;
      } else if (std::get<frontend::FrontendError>(lr).code ==
                 frontend::FrontendErrorCode::kInternal) {
        ++internal;
      } else {
        ++rejected;
      }
    }
    corpus_best = std::min(corpus_best, sw.seconds());
    cr.ok = ok;
    cr.rejected = rejected;
    cr.internal = internal;
  }
  cr.wall_seconds = corpus_best;
  cr.inputs_per_sec = corpus_best > 0 ? corpus_n / corpus_best : 0;

  util::Table t({"fixture", "bytes", "insts", "blocks", "nodes", "ops",
                 "lifts/s", "Minsts/s"});
  for (const auto& r : rows)
    t.row()
        .cell(r.name)
        .cell(static_cast<long>(r.image_bytes))
        .cell(r.stats.decoded_instructions)
        .cell(r.stats.blocks)
        .cell(r.stats.nodes)
        .cell(r.stats.operations)
        .cell(r.lifts_per_sec, 0)
        .cell(r.insts_per_sec / 1e6, 2);
  t.print();
  std::printf("\ncorpus: %ld inputs, %ld lifted, %ld rejected, %ld internal, "
              "%.0f inputs/s\n",
              cr.inputs, cr.ok, cr.rejected, cr.internal, cr.inputs_per_sec);

  const char* env = std::getenv("ISEX_BENCH_OUT");
  const std::string out_path = env && *env ? env : "BENCH_lift.json";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open '%s'\n", out_path.c_str());
    return 2;
  }
  out << "{\n\"provenance\": ";
  obs::write_provenance_json(out, obs::collect_provenance());
  out << ",\n\"reps\": " << reps << ",\n\"iters\": " << iters
      << ",\n\"fixtures\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char buf[384];
    std::snprintf(
        buf, sizeof buf,
        "  {\"name\": \"%s\", \"image_bytes\": %zu, \"instructions\": %ld, "
        "\"illegal\": %ld, \"blocks\": %ld, \"nodes\": %ld, "
        "\"operations\": %ld, \"wall_seconds\": %.6f, "
        "\"lifts_per_sec\": %.1f, \"insts_per_sec\": %.1f}",
        r.name.c_str(), r.image_bytes, r.stats.decoded_instructions,
        r.stats.illegal_instructions, static_cast<long>(r.stats.blocks),
        r.stats.nodes, r.stats.operations, r.wall_seconds, r.lifts_per_sec,
        r.insts_per_sec);
    out << buf << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "],\n\"corpus\": {";
  char cbuf[256];
  std::snprintf(cbuf, sizeof cbuf,
                "\"inputs\": %ld, \"ok\": %ld, \"rejected\": %ld, "
                "\"internal_errors\": %ld, \"wall_seconds\": %.6f, "
                "\"inputs_per_sec\": %.1f",
                cr.inputs, cr.ok, cr.rejected, cr.internal, cr.wall_seconds,
                cr.inputs_per_sec);
  out << cbuf << "}\n}\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return cr.internal == 0 ? 0 : 1;
}
