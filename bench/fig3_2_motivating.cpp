// Fig 3.2: shortcomings of per-task heuristics on the didactic three-task
// example — (a) equal area split, (b) smallest deadline first, (c) highest
// utilization reduction first, (d) best gain/area ratio all leave U > 1;
// (e) the optimal selection reaches exactly U = 1.
//
// Paper numbers reproduced exactly: U' = 29/24 for (a), 25/24 for (b)-(d),
// 24/24 for (e).
#include <cstdio>

#include "isex/customize/heuristics.hpp"
#include "isex/customize/motivating.hpp"
#include "isex/customize/select_edf.hpp"
#include "isex/util/table.hpp"

using namespace isex;
using namespace isex::customize;

int main() {
  std::printf("=== Fig 3.2: heuristics vs optimal on the motivating "
              "example (budget = 10) ===\n\n");
  const auto ts = motivating_example();
  util::Table t({"strategy", "T1", "T2", "T3", "area", "U'", "schedulable"});

  auto add_row = [&](const char* name, const SelectionResult& r) {
    t.row().cell(name);
    for (int a : r.assignment) t.cell(a == 0 ? "sw" : "ci");
    t.cell(r.area_used, 0).cell(r.utilization, 4).cell(
        r.schedulable ? "yes" : "no");
  };

  add_row("(a) equal-area",
          select_heuristic(ts, kMotivatingAreaBudget,
                           Heuristic::kEqualAreaDivision));
  add_row("(b) smallest-deadline",
          select_heuristic(ts, kMotivatingAreaBudget,
                           Heuristic::kSmallestDeadlineFirst));
  add_row("(c) max-dU",
          select_heuristic(ts, kMotivatingAreaBudget,
                           Heuristic::kHighestUtilReduction));
  add_row("(d) max-dU/area",
          select_heuristic(ts, kMotivatingAreaBudget,
                           Heuristic::kBestGainAreaRatio));
  add_row("(e) optimal (DP)", select_edf(ts, kMotivatingAreaBudget));
  t.print();
  std::printf("\npaper: (a) 29/24=1.2083, (b)-(d) 25/24=1.0417, "
              "(e) 24/24=1.0000\n");
  return 0;
}
