// Extension study: dynamic voltage scaling on the customized system.
//
// The paper applies *static* voltage scaling to the utilization freed by
// custom instructions (Fig 3.4). This extension layers cycle-conserving EDF
// (Pillai & Shin) on top: jobs that finish below WCET return their unused
// bandwidth, letting the processor dip below the static operating point.
// Expected shape: cc-EDF's extra saving over static grows as the actual/WCET
// ratio shrinks, and vanishes at bc = 1.
#include <cstdio>

#include "isex/customize/select_edf.hpp"
#include "isex/energy/dvs_sim.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  // The customized Chapter 3 task set 1 at U0 = 1.08 with the *smallest*
  // schedulable budget: the customized utilization lands near 1, so the
  // static operating point stays off the 300 MHz floor and cc-EDF has
  // headroom to reclaim into.
  auto ts = workloads::make_taskset(workloads::ch3_tasksets()[0], 1.08);
  ts.sort_by_period();
  customize::SelectionResult sel;
  for (double frac = 0.01; frac <= 1.0; frac += 0.01) {
    sel = customize::select_edf(ts, frac * ts.max_area());
    if (sel.schedulable) break;
  }
  std::printf("=== Extension: static vs cycle-conserving EDF scaling ===\n\n");
  std::printf("customized utilization: %.3f (was 1.0 in software)\n\n",
              sel.utilization);

  std::vector<energy::DvsTask> tasks;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& cfg =
        ts.tasks[i].configs[static_cast<std::size_t>(sel.assignment[i])];
    // Normalize to keep the simulation horizon manageable.
    const double scale = 1e-4;
    tasks.push_back(energy::DvsTask{cfg.cycles * scale,
                                    ts.tasks[i].period * scale, 1.0, 1.0});
  }
  double horizon = 0;
  for (const auto& t : tasks) horizon = std::max(horizon, 50 * t.period);

  util::Table t({"actual/WCET", "E no-DVS", "E static", "E ccEDF",
                 "static save%", "ccEDF save%", "ccEDF avg MHz"});
  for (double bc : {1.0, 0.9, 0.7, 0.5, 0.3, 0.1}) {
    for (auto& task : tasks) {
      task.bc_min = bc * 0.9;
      task.bc_max = bc;
    }
    util::Rng r1(11), r2(11), r3(11);
    const auto none =
        energy::simulate_dvs(tasks, energy::DvsPolicy::kNoDvs, horizon, r1);
    const auto stat =
        energy::simulate_dvs(tasks, energy::DvsPolicy::kStatic, horizon, r2);
    const auto cc =
        energy::simulate_dvs(tasks, energy::DvsPolicy::kCcEdf, horizon, r3);
    t.row()
        .cell(bc, 2)
        .cell(none.energy, 0)
        .cell(stat.energy, 0)
        .cell(cc.energy, 0)
        .cell(100 * (1 - stat.energy / none.energy), 1)
        .cell(100 * (1 - cc.energy / none.energy), 1)
        .cell(cc.avg_freq_mhz, 0);
  }
  t.print();
  std::printf("\nexpected: ccEDF == static at actual/WCET = 1, and the gap "
              "widens as jobs finish earlier\n");
  return 0;
}
