// Fault-tolerance sweep: miss rate and degradation behaviour vs overrun
// factor, for every Table 5.1 kernel as a customized single-task system.
//
// Each kernel is placed at software-only utilization 0.92, customized at a
// 50% Max_Area budget, and then executed under seeded stochastic overruns
// (spike probability 0.3, bounded factor = the sweep variable). Rows compare
// the soft (run-to-completion) runtime against the mode-change runtime
// (abort + fallback to the task's deepest configuration after 2 consecutive
// misses, recovery after 4 clean jobs). Emits CSV on stdout; the analytic
// alpha* column marks where the deterministic-inflation boundary sits, so the
// observed miss-rate ramp can be read against the sensitivity analysis.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "isex/customize/select_edf.hpp"
#include "isex/faults/sensitivity.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

// The 18 kernels of the thesis' Table 5.1 benchmark pool.
const char* kKernels[] = {
    "crc32",      "sha",       "blowfish", "rijndael", "susan",    "adpcm_enc",
    "adpcm_dec",  "cjpeg",     "djpeg",    "g721encode", "g721decode",
    "jfdctint",   "ndes",      "edn",      "lms",      "compress", "aes",
    "3des",
};

}  // namespace

int main() {
  util::Table csv({"kernel", "policy", "overrun_factor", "alpha_star",
                   "released", "completed", "missed", "aborted",
                   "degradation_events", "miss_rate", "worst_resp_ratio"});
  for (const char* kernel : kKernels) {
    auto ts = workloads::make_taskset({kernel}, 0.92);
    const auto sel = customize::select_edf(ts, 0.5 * ts.max_area());
    const double alpha_star =
        faults::critical_scaling(ts, sel.assignment, rt::Policy::kEdf);
    const auto sim_tasks = faults::to_sim_tasks(ts, sel.assignment);
    const std::int64_t jobs = 250;

    for (double factor = 1.0; factor <= 1.6 + 1e-9; factor += 0.1) {
      faults::FaultModel fault;
      fault.overrun_probability = 0.3;
      fault.overrun_max_factor = factor;
      for (const rt::MissPolicy policy :
           {rt::MissPolicy::kSoft, rt::MissPolicy::kModeChange}) {
        rt::SimOptions so;
        so.policy = rt::Policy::kEdf;
        so.horizon = jobs * sim_tasks[0].period;
        so.faults = &fault;
        so.miss_policy = policy;
        so.max_misses = 0;  // counts only; the full log is not needed
        const auto r = rt::simulate(sim_tasks, so);
        std::int64_t missed = 0, aborted = 0, completed = 0;
        for (auto v : r.missed_jobs) missed += v;
        for (auto v : r.aborted_jobs) aborted += v;
        for (auto v : r.completed_jobs) completed += v;
        csv.row()
            .cell(kernel)
            .cell(policy == rt::MissPolicy::kSoft ? "soft" : "mode")
            .cell(factor, 2)
            .cell(alpha_star, 4)
            .cell(jobs)
            .cell(completed)
            .cell(missed)
            .cell(aborted)
            .cell(static_cast<std::int64_t>(r.events.size()))
            .cell(static_cast<double>(missed) / static_cast<double>(jobs), 4)
            .cell(static_cast<double>(r.worst_response[0]) /
                      static_cast<double>(sim_tasks[0].period),
                  3);
      }
    }
    std::fprintf(stderr, "swept %s (alpha* = %.3f)\n", kernel, alpha_star);
  }
  csv.print_csv(std::cout);
  return 0;
}
