// Fig 6.8: quality of the solutions returned by the three partitioners on
// synthetic inputs.
//
// Paper shapes: iterative tracks the exhaustive optimum closely and beats
// greedy; exhaustive fails to return any solution past 12 hot loops, where
// iterative and greedy keep scaling (iterative still ahead).
#include <cstdio>

#include "isex/reconfig/algorithms.hpp"
#include "isex/util/table.hpp"

using namespace isex;

int main() {
  std::printf("=== Fig 6.8: solution quality (net gain, K cycles) ===\n\n");
  util::Table t({"hot loops", "exhaustive", "iterative", "greedy",
                 "iter/opt", "greedy/opt"});
  for (int n : {5, 6, 7, 8, 9, 10, 11, 12, 16, 20, 30}) {
    util::Rng gen(static_cast<std::uint64_t>(n) * 2003 + 11);
    const auto p = reconfig::synthetic_problem(n, gen);

    util::Rng rng(13);
    const auto iter = reconfig::iterative_partition(p, rng);
    const auto greedy = reconfig::greedy_partition(p);
    const double g_iter = reconfig::net_gain(p, iter);
    const double g_greedy = reconfig::net_gain(p, greedy);

    if (n <= 10) {
      const auto ex = reconfig::exhaustive_partition(p);
      const double g_opt = reconfig::net_gain(p, ex.solution);
      t.row()
          .cell(n)
          .cell(g_opt / 1000, 1)
          .cell(g_iter / 1000, 1)
          .cell(g_greedy / 1000, 1)
          .cell(g_opt > 0 ? g_iter / g_opt : 1.0, 3)
          .cell(g_opt > 0 ? g_greedy / g_opt : 1.0, 3);
    } else {
      t.row()
          .cell(n)
          .cell("no solution")  // the paper's phrasing past 12 loops
          .cell(g_iter / 1000, 1)
          .cell(g_greedy / 1000, 1)
          .cell("-")
          .cell("-");
    }
  }
  t.print();
  std::printf("\npaper: iterative within a few %% of exhaustive; greedy "
              "noticeably below; exhaustive returns nothing past 12 loops\n");
  return 0;
}
