// Extension study: disconnected custom-instruction candidates
// (Section 2.3.1, [81,23,36]) — pairs of independent datapaths fused into
// one instruction so the CFU supplies the instruction-level parallelism the
// single-issue base core lacks.
//
// Expected shape: enabling disconnected pairs never hurts and helps most on
// kernels with several independent hot dataflows per block (DCT butterflies,
// multi-lane quantization), while serial-chain kernels (crc32) gain little.
#include <cstdio>

#include "isex/select/config_curve.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  const auto& lib = hw::CellLibrary::standard_018um();
  std::printf("=== Extension: disconnected candidates (connected-only vs "
              "+pairs) ===\n\n");
  util::Table t({"benchmark", "speedup conn.", "speedup +pairs", "delta%",
                 "area conn.", "area +pairs"});
  for (const char* name : {"jfdctint", "cjpeg", "edn", "susan", "sha",
                           "crc32", "md5", "lms"}) {
    auto prog = workloads::make_benchmark(name);
    const auto counts = prog.wcet_counts(ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
    select::CurveOptions base;
    select::CurveOptions pairs;
    pairs.disconnected_pairs = true;
    const auto c0 = select::build_config_curve(prog, counts, lib, base);
    const auto c1 = select::build_config_curve(prog, counts, lib, pairs);
    const double s0 = c0.base_cycles() / c0.best_cycles();
    const double s1 = c1.base_cycles() / c1.best_cycles();
    t.row()
        .cell(name)
        .cell(s0, 3)
        .cell(s1, 3)
        .cell(100 * (s1 / s0 - 1), 2)
        .cell(c0.max_area(), 1)
        .cell(c1.max_area(), 1);
  }
  t.print();
  std::printf("\nliterature: disconnected patterns raise speedups when the "
              "base architecture has no ILP; no benefit on serial chains\n");
  return 0;
}
