// Table 6.2 + Fig 6.10: the JPEG case study — CIS versions of the codec's
// hot loops, and solution quality of the three partitioners as the
// reconfiguration cost and fabric area vary.
//
// Paper shapes: with a roomy fabric all algorithms converge (one or two
// configurations suffice); as the fabric shrinks, temporal partitioning
// buys increasing gains over the static solution until rho eats the profit;
// iterative tracks exhaustive, greedy trails.
#include <cstdio>

#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/jpeg_case.hpp"
#include "isex/reconfig/spatial.hpp"
#include "isex/util/table.hpp"

using namespace isex;

int main() {
  std::printf("=== Table 6.2: CIS versions for the JPEG application ===\n\n");
  {
    const auto p = reconfig::jpeg_case_study(20'000, 120);
    util::Table t({"hot loop", "versions (area, gainK)"});
    for (const auto& loop : p.loops) {
      std::string v;
      for (const auto& ver : loop.versions) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "(%.0f, %.1f) ", ver.area,
                      ver.gain / 1000);
        v += buf;
      }
      t.row().cell(loop.name).cell(v);
    }
    t.print();
  }

  std::printf("\n=== Fig 6.10: solution quality (net gain, K cycles) ===\n\n");
  util::Table t({"max area", "rho(K)", "static", "iterative", "greedy",
                 "optimal", "iter.configs"});
  for (double max_area : {60.0, 120.0, 240.0}) {
    for (double rho : {5'000.0, 20'000.0, 80'000.0, 320'000.0}) {
      const auto p = reconfig::jpeg_case_study(rho, max_area);
      // Static = best single configuration (no reconfiguration).
      std::vector<int> all(p.loops.size());
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
      const auto static_versions = reconfig::spatial_select(p, all, p.max_area);
      reconfig::Solution stat;
      stat.version = static_versions;
      stat.config.assign(p.loops.size(), -1);
      for (std::size_t i = 0; i < all.size(); ++i)
        if (stat.version[i] > 0) stat.config[i] = 0;

      util::Rng rng(17);
      const auto iter = reconfig::iterative_partition(p, rng);
      const auto greedy = reconfig::greedy_partition(p);
      const auto ex = reconfig::exhaustive_partition(p);
      t.row()
          .cell(max_area, 0)
          .cell(rho / 1000, 0)
          .cell(reconfig::net_gain(p, stat) / 1000, 1)
          .cell(reconfig::net_gain(p, iter) / 1000, 1)
          .cell(reconfig::net_gain(p, greedy) / 1000, 1)
          .cell(reconfig::net_gain(p, ex.solution) / 1000, 1)
          .cell(iter.num_configs());
    }
  }
  t.print();
  std::printf("\npaper: reconfiguration beats static on the tight fabric; "
              "the advantage shrinks as rho grows; iterative ~ optimal\n");
  return 0;
}
