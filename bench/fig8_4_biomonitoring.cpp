// Fig 8.4: performance speedup with customization for the wearable
// bio-monitoring applications (heart-rate monitoring, pulse-transit-time,
// fall detection).
//
// Paper shapes: all three fixed-point kernels customize well (their inner
// loops are MAC/compare chains); speedups in the low single digits, with
// the FIR/energy-dominated heart-rate pipeline benefiting most.
#include <cstdio>

#include "isex/biomon/biomon.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/table.hpp"

using namespace isex;

int main() {
  const auto& lib = hw::CellLibrary::standard_018um();
  std::printf("=== Fig 8.4: bio-monitoring speedup with customization ===\n\n");
  util::Table t({"application", "SW cycles", "area budget", "cycles",
                 "speedup"});
  for (auto& prog : biomon::all_biomon_kernels()) {
    const auto counts = prog.wcet_counts(ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
    const auto curve =
        select::build_config_curve(prog, counts, lib, select::CurveOptions{});
    const double base = curve.base_cycles();
    for (double frac : {0.25, 0.5, 1.0}) {
      const double budget = frac * curve.max_area();
      const double cycles = curve.cycles_at(budget);
      t.row()
          .cell(prog.name())
          .cell(base, 0)
          .cell(budget, 1)
          .cell(cycles, 0)
          .cell(base / cycles, 3);
    }
  }
  t.print();
  std::printf("\npaper: speedups of roughly 2-4x across the bio-monitoring "
              "kernels after fixed-point conversion\n");
  return 0;
}
