// Fig 5.4: (a) analysis time and (b) hardware area of the iterative scheme
// as functions of the input utilization, for the 5 Chapter 5 task sets.
//
// Paper shapes: analysis time grows with input utilization (more rounds,
// deeper zoom) and stays in seconds even for task sets containing 3des;
// hardware area grows with input utilization (more custom instructions are
// needed); infeasible (set, U) pairs (e.g. task set 3 at U >= 1.4 in the
// paper) show the best-effort values with schedulable = no.
#include <cstdio>

#include "isex/mlgp/iterative.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  const auto& lib = hw::CellLibrary::standard_018um();
  std::printf("=== Fig 5.4: analysis time and area vs input utilization ===\n\n");
  util::Table t({"task set", "U0", "analysis(s)", "iterations", "area(adders)",
                 "final U", "schedulable"});
  int set_id = 1;
  for (const auto& names : workloads::ch5_tasksets()) {
    for (double u0 = 1.1; u0 <= 1.51; u0 += 0.1) {
      std::vector<mlgp::IterTask> tasks;
      for (const auto& n : names)
        tasks.emplace_back(n, workloads::make_benchmark(n), 0.0);
      for (auto& task : tasks) {
        const double wcet = task.program.wcet(ir::Program::sum_cost(
            [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
        task.period = wcet / (u0 / static_cast<double>(tasks.size()));
      }
      util::Stopwatch sw;
      mlgp::IterativeOptions opts;
      util::Rng rng(55);
      const auto res = iterative_customize(tasks, lib, opts, rng);
      t.row()
          .cell(set_id)
          .cell(u0, 1)
          .cell(sw.seconds(), 3)
          .cell(res.trace.size())
          .cell(res.area, 1)
          .cell(res.utilization, 4)
          .cell(res.met_target ? "yes" : "no");
    }
    ++set_id;
  }
  t.print();
  std::printf("\npaper: 10-65 s to schedulability (their machine); area "
              "grows with U0; bottom-up enumeration of task set 1 takes "
              "over half a day\n");
  return 0;
}
