// Algorithm micro-benchmarks (google-benchmark): candidate enumeration,
// the selection DPs, MLGP, k-way partitioning, and the ablation sweeps
// DESIGN.md calls out (EDF DP grid granularity, RMS pruning).
//
// The custom main below writes BENCH_micro.json (override the path with
// ISEX_BENCH_OUT): the google-benchmark JSON report plus the obs metrics
// registry, so a timing regression can be read next to the algorithmic
// counters (enumeration rejects, DP cells, B&B nodes) that explain it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/ise/enumerate.hpp"
#include "isex/mlgp/mlgp.hpp"
#include "isex/partition/kway.hpp"
#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/trace_compress.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/obs/provenance.hpp"
#include "isex/workloads/tasks.hpp"
#include "isex/workloads/patterns.hpp"

using namespace isex;

namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

ir::Dfg bench_dfg(int ops) {
  util::Rng rng(42);
  ir::Dfg d;
  auto in = workloads::emit_inputs(d, 6);
  workloads::emit_expression(d, in, ops, workloads::OpMix{}, rng);
  workloads::seal_block(d);
  return d;
}

void BM_EnumerateCandidates(benchmark::State& state) {
  const auto d = bench_dfg(static_cast<int>(state.range(0)));
  ise::EnumOptions opts;
  opts.max_candidates = 20000;
  for (auto _ : state)
    benchmark::DoNotOptimize(ise::enumerate_candidates(d, lib(), opts));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EnumerateCandidates)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_MaximalMisos(benchmark::State& state) {
  const auto d = bench_dfg(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(ise::maximal_misos(d, lib(), ise::Constraints{}));
}
BENCHMARK(BM_MaximalMisos)->Arg(50)->Arg(200)->Arg(800);

void BM_MlgpGenerate(benchmark::State& state) {
  const auto d = bench_dfg(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(
        mlgp::generate_for_block(d, lib(), mlgp::MlgpOptions{}, rng));
  }
}
BENCHMARK(BM_MlgpGenerate)->Arg(50)->Arg(200)->Arg(800)->Arg(2000);

/// Ablation: EDF DP cost vs grid granularity (DESIGN.md).
void BM_SelectEdfGrid(benchmark::State& state) {
  auto ts = workloads::make_taskset(workloads::ch3_tasksets()[0], 1.05);
  const double budget = 0.6 * ts.max_area();
  customize::EdfOptions opts;
  opts.area_grid = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(customize::select_edf(ts, budget, opts));
}
BENCHMARK(BM_SelectEdfGrid)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Ablation: RMS branch-and-bound with and without the utilization bound.
void BM_SelectRmsPruning(benchmark::State& state) {
  auto ts = workloads::make_taskset(workloads::ch3_tasksets()[1], 1.0);
  ts.sort_by_period();
  const double budget = 0.6 * ts.max_area();
  customize::RmsOptions opts;
  opts.use_bound_pruning = state.range(0) != 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(customize::select_rms(ts, budget, opts));
}
BENCHMARK(BM_SelectRmsPruning)->Arg(1)->Arg(0);

void BM_KwayPartition(benchmark::State& state) {
  util::Rng gen(5);
  const int n = static_cast<int>(state.range(0));
  partition::WeightedGraph g(n);
  for (int v = 0; v < n; ++v) g.set_weight(v, gen.uniform_int(1, 10));
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (gen.chance(0.1)) g.add_edge(u, v, gen.uniform_int(1, 20));
  for (auto _ : state) {
    util::Rng rng(3);
    benchmark::DoNotOptimize(partition::kway_partition(g, 4, rng));
  }
}
BENCHMARK(BM_KwayPartition)->Arg(32)->Arg(128)->Arg(512);

/// Reconfiguration counting: flat trace walk vs grammar-compressed count.
void BM_ReconfigCountFlat(benchmark::State& state) {
  util::Rng gen(13);
  auto p = reconfig::synthetic_problem(12, gen);
  // Long repetitive trace (the regime the compression targets).
  std::vector<int> base = p.trace;
  p.trace.clear();
  for (int rep = 0; rep < static_cast<int>(state.range(0)); ++rep)
    p.trace.insert(p.trace.end(), base.begin(), base.end());
  util::Rng rng(3);
  const auto s = reconfig::greedy_partition(p);
  for (auto _ : state)
    benchmark::DoNotOptimize(reconfig::count_reconfigurations(p, s));
}
BENCHMARK(BM_ReconfigCountFlat)->Arg(100)->Arg(1000);

void BM_ReconfigCountCompressed(benchmark::State& state) {
  util::Rng gen(13);
  auto p = reconfig::synthetic_problem(12, gen);
  std::vector<int> base = p.trace;
  p.trace.clear();
  for (int rep = 0; rep < static_cast<int>(state.range(0)); ++rep)
    p.trace.insert(p.trace.end(), base.begin(), base.end());
  util::Rng rng(3);
  const auto s = reconfig::greedy_partition(p);
  const auto g = reconfig::compress_trace(p.trace);
  for (auto _ : state)
    benchmark::DoNotOptimize(reconfig::count_reconfigurations(g, p, s));
}
BENCHMARK(BM_ReconfigCountCompressed)->Arg(100)->Arg(1000);

void BM_IterativePartition(benchmark::State& state) {
  util::Rng gen(9);
  const auto p =
      reconfig::synthetic_problem(static_cast<int>(state.range(0)), gen);
  for (auto _ : state) {
    util::Rng rng(3);
    benchmark::DoNotOptimize(reconfig::iterative_partition(p, rng));
  }
}
BENCHMARK(BM_IterativePartition)->Arg(10)->Arg(30)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  const char* env = std::getenv("ISEX_BENCH_OUT");
  const std::string out_path = env && *env ? env : "BENCH_micro.json";
  const std::string raw_path = out_path + ".raw";

  // Route google-benchmark's own JSON file report to a sidecar unless the
  // caller already asked for one; the composite written below embeds it.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=" + raw_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int eff_argc = static_cast<int>(args.size());
  benchmark::Initialize(&eff_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(eff_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (has_out) return 0;  // caller owns the report; skip the composite

  std::ifstream raw(raw_path);
  std::ostringstream bench_json;
  bench_json << raw.rdbuf();
  std::remove(raw_path.c_str());
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open '%s'\n", out_path.c_str());
    return 1;
  }
  out << "{\n\"provenance\": ";
  obs::write_provenance_json(out, obs::collect_provenance());
  out << ",\n\"benchmark\": " << bench_json.str() << ",\n\"obs_metrics\": ";
  obs::Registry::global().write_json(out);
  out << "\n}\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
