// Extension study (DESIGN.md ablations; Fig 2.2 architecture taxonomy):
// net gain of the four extensible-processor architectures on the JPEG case
// study and on synthetic inputs —
//   static (a), temporal-only (b), temporal+spatial (c, the Chapter 6
//   contribution), and partial reconfiguration (d).
//
// Expected ordering: (c) >= (a) and (c) >= (b) under the full-reload cost
// model (clustering amortizes reloads); (d) >= (c) when evaluated under the
// area-proportional cost at the matched rate (loading less costs less);
// temporal-only collapses below static once reloads dominate.
#include <cstdio>

#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/architectures.hpp"
#include "isex/reconfig/jpeg_case.hpp"
#include "isex/reconfig/spatial.hpp"
#include "isex/util/table.hpp"

using namespace isex;

namespace {

void run_case(const char* name, const reconfig::Problem& p) {
  std::printf("--- %s (MaxA=%.0f, rho=%.0f) ---\n", name, p.max_area,
              p.reconfig_cost);
  // Matched per-area rate: a full-fabric reload costs the same as in the
  // constant-cost model.
  const double rho_per_area = p.reconfig_cost / p.max_area;

  util::Rng rng(21);
  const auto stat = [&] {
    std::vector<int> all(p.loops.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    const auto versions = reconfig::spatial_select(p, all, p.max_area);
    reconfig::Solution s;
    s.version = versions;
    s.config.assign(p.loops.size(), -1);
    for (std::size_t i = 0; i < all.size(); ++i)
      if (s.version[i] > 0) s.config[i] = 0;
    return s;
  }();
  const auto temporal = reconfig::temporal_only_solution(p);
  const auto spatial = reconfig::iterative_partition(p, rng);
  const auto partial = reconfig::iterative_partition_partial(p, rho_per_area, rng);

  util::Table t({"architecture", "configs", "net gain (full-reload)",
                 "net gain (partial model)"});
  auto row = [&](const char* arch, const reconfig::Solution& s) {
    t.row()
        .cell(arch)
        .cell(s.num_configs())
        .cell(reconfig::net_gain(p, s) / 1000, 1)
        .cell(reconfig::partial_net_gain(p, s, rho_per_area) / 1000, 1);
  };
  row("(a) static", stat);
  row("(b) temporal-only", temporal);
  row("(c) temporal+spatial", spatial);
  row("(d) partial (opt.)", partial);
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Extension: architecture variants (Fig 2.2) ===\n\n");
  run_case("JPEG, tight fabric", reconfig::jpeg_case_study(20'000, 60));
  run_case("JPEG, roomy fabric", reconfig::jpeg_case_study(20'000, 240));
  {
    util::Rng gen(77);
    run_case("synthetic n=12", reconfig::synthetic_problem(12, gen));
  }
  {
    util::Rng gen(78);
    run_case("synthetic n=30", reconfig::synthetic_problem(30, gen));
  }
  return 0;
}
