// Table 5.2 + Fig 5.3: reduction in processor utilization with increasing
// iterations of the top-down scheme, for 5 task sets at input utilizations
// U in {1.1 .. 1.5}.
//
// Paper shapes: a steep drop in the first iteration, gradual reduction
// after; 4-5 iterations on average to reach U <= 1; higher input U needs
// more iterations; some (task set, U) pairs never reach 1 (reported
// honestly).
#include <cstdio>

#include "isex/mlgp/iterative.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  std::printf("=== Table 5.2: task sets ===\n\n");
  {
    util::Table t({"task set", "benchmarks"});
    int i = 1;
    for (const auto& names : workloads::ch5_tasksets()) {
      std::string all;
      for (const auto& n : names) all += (all.empty() ? "" : ", ") + n;
      t.row().cell(i++).cell(all);
    }
    t.print();
  }

  const auto& lib = hw::CellLibrary::standard_018um();
  std::printf("\n=== Fig 5.3: utilization vs iterations ===\n");
  int set_id = 1;
  for (const auto& names : workloads::ch5_tasksets()) {
    std::printf("\n--- task set %d ---\n", set_id++);
    util::Table t({"U0", "iterations(U trace)", "final U", "schedulable"});
    for (double u0 = 1.1; u0 <= 1.51; u0 += 0.1) {
      std::vector<mlgp::IterTask> tasks;
      for (const auto& n : names)
        tasks.emplace_back(n, workloads::make_benchmark(n), 0.0);
      for (auto& task : tasks) {
        const double wcet = task.program.wcet(ir::Program::sum_cost(
            [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
        task.period = wcet / (u0 / static_cast<double>(tasks.size()));
      }
      mlgp::IterativeOptions opts;
      util::Rng rng(55);
      const auto res = iterative_customize(tasks, lib, opts, rng);
      std::string trace;
      for (const auto& rec : res.trace) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%.3f ", rec.utilization);
        trace += buf;
        if (trace.size() > 70) {
          trace += "...";
          break;
        }
      }
      t.row()
          .cell(u0, 1)
          .cell(trace)
          .cell(res.utilization, 4)
          .cell(res.met_target ? "yes" : "no");
    }
    t.print();
  }
  std::printf("\npaper: U drops sharply on iteration 1, reaches <= 1.0 in "
              "~4-5 iterations on average\n");
  return 0;
}
