// Table 7.1 + Fig 7.4 + Table 7.2: runtime reconfiguration for real-time
// multi-tasking — the DP against the exact optimum and the static baseline,
// in solution quality (utilization) and running time.
//
// Paper shapes: DP utilization sits on top of Optimal across area budgets;
// both clearly beat Static when the fabric is tight; Static catches up as
// area grows; Optimal's (ILP) running time explodes with task count while
// DP stays in milliseconds.
#include <cstdio>

#include "isex/rtreconfig/algorithms.hpp"
#include "isex/util/rng.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

/// Task set with CIS versions derived from the benchmark configuration
/// curves, thinned to a handful of versions each (Table 7.1's shape).
rtreconfig::Problem benchmark_problem(double max_area, double rho_frac) {
  rtreconfig::Problem p;
  p.max_area = max_area;
  p.area_grid = 0.5;
  const std::vector<std::string> names = {"adpcm_dec", "crc32", "ndes",
                                          "jfdctint", "aes", "lms"};
  double min_period = 1e18;
  for (const auto& n : names) {
    const auto& task = workloads::cached_task(n);
    rtreconfig::TaskCis t;
    t.name = n;
    t.period = task.sw_cycles() / (1.15 / static_cast<double>(names.size()));
    // Thin the configuration curve to <= 4 versions.
    const auto& pts = task.configs;
    const std::size_t step = std::max<std::size_t>(1, pts.size() / 4);
    for (std::size_t i = 0; i < pts.size(); i += step)
      t.versions.push_back({pts[i].area, pts[i].cycles});
    if (t.versions.back().cycles != pts.back().cycles)
      t.versions.push_back({pts.back().area, pts.back().cycles});
    min_period = std::min(min_period, t.period);
    p.tasks.push_back(std::move(t));
  }
  p.reconfig_cost = rho_frac * min_period;
  return p;
}

rtreconfig::Problem random_problem(util::Rng& rng, int n) {
  rtreconfig::Problem p;
  p.max_area = 100;
  p.reconfig_cost = 20;
  for (int i = 0; i < n; ++i) {
    rtreconfig::TaskCis t;
    t.name = "T" + std::to_string(i);
    const double sw = rng.uniform_int(100, 600);
    t.period = sw * rng.uniform_real(3.0, 6.0);
    t.versions.push_back({0, sw});
    double area = 0, cycles = sw;
    for (int j = 0; j < rng.uniform_int(1, 3); ++j) {
      area += rng.uniform_int(15, 70);
      cycles *= rng.uniform_real(0.6, 0.9);
      t.versions.push_back({area, cycles});
    }
    p.tasks.push_back(std::move(t));
  }
  return p;
}

}  // namespace

int main() {
  std::printf("=== Table 7.1: CIS versions of the tasks ===\n\n");
  {
    const auto p = benchmark_problem(80, 0.02);
    util::Table t({"task", "period", "versions (area, cycles)"});
    for (const auto& task : p.tasks) {
      std::string v;
      for (const auto& ver : task.versions) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "(%.0f, %.3g) ", ver.area, ver.cycles);
        v += buf;
      }
      t.row().cell(task.name).cell(task.period, 0).cell(v);
    }
    t.print();
  }

  std::printf("\n=== Fig 7.4: utilization of DP / Optimal / Static vs "
              "fabric area ===\n\n");
  {
    util::Table t({"max area", "U static", "U dp", "U optimal", "dp configs"});
    for (double area : {20.0, 40.0, 60.0, 80.0, 120.0, 200.0, 400.0}) {
      const auto p = benchmark_problem(area, 0.02);
      const auto stat = rtreconfig::static_partition(p);
      const auto dp = rtreconfig::dp_partition(p);
      const auto opt = rtreconfig::optimal_partition(p);
      t.row()
          .cell(area, 0)
          .cell(stat.utilization, 4)
          .cell(dp.utilization, 4)
          .cell(opt.solution.utilization, 4)
          .cell(dp.num_configs());
    }
    t.print();
  }

  std::printf("\n=== Table 7.2: running time of Optimal and DP (seconds) "
              "===\n\n");
  {
    util::Table t({"tasks", "DP", "Optimal", "opt nodes", "U dp/U opt"});
    for (int n : {3, 4, 5, 6, 7, 8, 9, 10, 12, 14}) {
      util::Rng rng(static_cast<std::uint64_t>(n) * 4001 + 3);
      const auto p = random_problem(rng, n);
      util::Stopwatch sw;
      const auto dp = rtreconfig::dp_partition(p);
      const double t_dp = sw.seconds();
      sw.restart();
      const auto opt = rtreconfig::optimal_partition(p, 30'000'000);
      const double t_opt = sw.seconds();
      t.row()
          .cell(n)
          .cell(t_dp, 4)
          .cell(t_opt, 3)
          .cell(opt.nodes)
          .cell(opt.solution.utilization > 0
                    ? dp.utilization / opt.solution.utilization
                    : 1.0,
                4);
    }
    t.print();
  }
  std::printf("\npaper: DP within a few %% of Optimal at a tiny fraction of "
              "the running time; Static clearly worse at tight areas\n");
  return 0;
}
