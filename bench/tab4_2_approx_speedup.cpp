// Table 4.1 + Table 4.2: running-time speedup of the two-stage FPTAS over
// the exact two-stage Pareto computation for task sets 1-5 at
// eps in {0.21, 0.44, 0.69, 3.0}.
//
// Paper shapes: speedups grow with eps (hundreds at eps=0.21 up to tens of
// thousands at eps=3.0); exact times grow with task-set size. The absolute
// axis depends on the cost-grid resolution; we use a fine grid (0.02
// adder-equivalents) so the exact DP's pseudo-polynomial cost axis is
// comparable to the paper's integer adder counts.
#include <cstdio>

#include "isex/pareto/inter.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

// Gate-level cost granularity (1/200 adder-equivalent). The exact DP's cost
// axis is pseudo-polynomial in 1/grid, which is exactly the regime the
// thesis' integer adder counts put it in; the FPTAS' grid-free scaling is
// what produces the orders-of-magnitude gap of Table 4.2.
constexpr double kGrid = 0.005;

struct TaskData {
  std::vector<pareto::Item> items;
  double base = 0;
  double period = 0;
};

TaskData load_task(const std::string& name) {
  const auto& lib = hw::CellLibrary::standard_018um();
  auto prog = workloads::make_benchmark(name);
  const auto counts = prog.wcet_counts(ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
  select::CurveOptions opts;
  const auto raw = select::selection_items(prog, counts, lib, opts);
  std::vector<std::pair<double, double>> ag;
  for (const auto& it : raw) ag.emplace_back(it.area, it.gain);
  TaskData d;
  d.items = pareto::quantize_items(ag, kGrid);
  d.base = select::base_cycles(prog, counts, lib);
  d.period = d.base * 6;  // equal software share around U = n/6
  return d;
}

}  // namespace

int main() {
  std::printf("=== Table 4.1: composition of the task sets ===\n\n");
  {
    util::Table t({"task set", "tasks", "benchmarks"});
    int i = 1;
    for (const auto& names : workloads::ch4_tasksets()) {
      std::string all;
      for (const auto& n : names) all += (all.empty() ? "" : ", ") + n;
      t.row().cell(i++).cell(names.size()).cell(all);
    }
    t.print();
  }

  std::printf("\n=== Table 4.2: FPTAS speedup over exact Pareto ===\n\n");
  util::Table t({"task set", "exact(s)", "|exact|", "eps=0.21", "eps=0.44",
                 "eps=0.69", "eps=3.0"});
  int set_id = 1;
  for (const auto& names : workloads::ch4_tasksets()) {
    std::vector<TaskData> tasks;
    for (const auto& n : names) tasks.push_back(load_task(n));

    // Exact two-stage: per-task exact workload fronts, then the exact
    // utilization front.
    util::Stopwatch sw;
    std::vector<pareto::TaskMenu> menus;
    for (const auto& td : tasks)
      menus.push_back(pareto::menu_from_front(
          pareto::exact_workload_front(td.items, td.base), td.period));
    const auto exact = pareto::exact_utilization_front(menus);
    const double t_exact = sw.seconds();

    t.row().cell(set_id++).cell(t_exact, 2).cell(exact.size());
    for (double eps : {0.21, 0.44, 0.69, 3.0}) {
      sw.restart();
      std::vector<pareto::TaskMenu> amenus;
      for (const auto& td : tasks)
        amenus.push_back(pareto::menu_from_front(
            pareto::approx_workload_front(td.items, td.base, eps),
            td.period));
      const auto approx = pareto::approx_utilization_front(amenus, eps);
      const double t_approx = sw.seconds();
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.0fx (%zu pts)",
                    t_approx > 0 ? t_exact / t_approx : 0.0, approx.size());
      t.cell(buf);
    }
  }
  t.print();
  std::printf("\npaper (task sets 1-5): eps=0.21 -> 643..1075x, "
              "eps=0.44 -> 3248..5918x, eps=3.0 -> 29615..89285x\n");
  return 0;
}
