// Calibration study: the idealized hardware model vs a conservative
// commercial-flow model (one extra issue/operand-move cycle per custom
// instruction, 60% area overhead for decode/interconnect — the kind of
// overheads the thesis' XPRES/Xtensa flow bakes in).
//
// Expected: every Fig 3.3 shape survives (monotone utilization decrease,
// schedulability crossover), while the utilization-reduction magnitudes
// shrink (measured: ~57-62% -> ~45-50%). The study shows part of the gap to
// Chapter 3's ~13-14% is a cost-model constant; the remainder comes from
// XPRES's far more conservative candidate identification, which no per-CI
// overhead constant can emulate.
#include <cstdio>

#include "isex/customize/select_edf.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

rt::Task build_task(const std::string& name, const hw::CellLibrary& lib) {
  auto prog = workloads::make_benchmark(name);
  const auto counts = prog.wcet_counts(ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
  select::CurveOptions opts;
  opts.enum_opts.max_candidates = 20000;
  const auto curve = select::build_config_curve(prog, counts, lib, opts);
  rt::Task t;
  t.name = name;
  t.configs = curve.points;
  return t;
}

}  // namespace

int main() {
  std::printf("=== Calibration: idealized vs conservative hardware model "
              "===\n\n");
  util::Table t({"task set", "model", "U0", "U @50%Max", "reduction%",
                 "schedulable"});
  int set_id = 1;
  for (const auto& names : workloads::ch3_tasksets()) {
    for (const bool conservative : {false, true}) {
      const auto& lib = conservative ? hw::CellLibrary::conservative_018um()
                                     : hw::CellLibrary::standard_018um();
      rt::TaskSet ts;
      for (const auto& n : names) ts.tasks.push_back(build_task(n, lib));
      for (double u0 : {0.8, 1.05}) {
        ts.set_periods_for_utilization(u0);
        const auto r = customize::select_edf(ts, 0.5 * ts.max_area());
        t.row()
            .cell(set_id)
            .cell(conservative ? "conservative" : "idealized")
            .cell(u0, 2)
            .cell(r.utilization, 4)
            .cell(100 * (1 - r.utilization / u0), 1)
            .cell(r.schedulable ? "yes" : "no");
      }
    }
    ++set_id;
  }
  t.print();
  std::printf("\npaper (Ch.3, XPRES): ~13-14%% utilization reduction at "
              "50-75%% MaxArea; the conservative model closes part of the "
              "magnitude gap (overhead constants) while preserving every "
              "shape; the rest is identification conservatism\n");
  return 0;
}
