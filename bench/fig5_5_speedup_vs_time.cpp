// Table 5.1 + Fig 5.5: speedup versus analysis time for MLGP and the IS
// baseline on individual benchmarks (g721decode, jfdctint, blowfish, md5,
// sha, 3des).
//
// Paper shapes: MLGP returns quality custom instructions within a second
// and finishes within ~10 s; IS is competitive on small blocks but its
// analysis time explodes on large basic blocks — on 3des (2745-node block)
// IS fails to produce the full set within the budget, while MLGP completes.
// The --random-matching flag ablates MLGP's gain/area-ratio matching.
#include <cstdio>
#include <cstring>

#include "isex/mlgp/is_baseline.hpp"
#include "isex/mlgp/mlgp.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

/// Profiled speedup of the whole benchmark when the given per-block gains
/// are applied: speedup = SW / (SW - total_gain).
struct ProfiledProgram {
  ir::Program prog;
  std::vector<std::int64_t> counts;  // profiled execution counts
  double sw_cycles = 0;
  std::vector<int> hot_blocks;       // by contribution, descending
};

ProfiledProgram profile(const std::string& name) {
  const auto& lib = hw::CellLibrary::standard_018um();
  ProfiledProgram pp{workloads::make_benchmark(name), {}, 0, {}};
  const auto cost = ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); });
  pp.sw_cycles = pp.prog.profile(cost);
  pp.counts.resize(static_cast<std::size_t>(pp.prog.num_blocks()));
  std::vector<std::pair<double, int>> order;
  for (int b = 0; b < pp.prog.num_blocks(); ++b) {
    pp.counts[static_cast<std::size_t>(b)] = pp.prog.block(b).exec_count;
    order.emplace_back(-cost(b, pp.prog.block(b)) *
                           static_cast<double>(pp.prog.block(b).exec_count),
                       b);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [w, b] : order) pp.hot_blocks.push_back(b);
  return pp;
}

}  // namespace

int main(int argc, char** argv) {
  bool random_matching = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--random-matching") == 0) random_matching = true;

  const auto& lib = hw::CellLibrary::standard_018um();
  const char* bench_names[] = {"g721decode", "jfdctint", "blowfish",
                               "md5",        "sha",      "3des"};

  std::printf("=== Table 5.1: benchmark characteristics ===\n\n");
  {
    util::Table t({"benchmark", "source", "WCET cycles", "max BB", "avg BB"});
    for (const auto& name : workloads::benchmark_names()) {
      auto prog = workloads::make_benchmark(name);
      const double wcet = prog.wcet(ir::Program::sum_cost(
          [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
      int mx = 0;
      long total = 0;
      for (const auto& b : prog.blocks()) {
        mx = std::max(mx, b.dfg.num_operations());
        total += b.dfg.num_operations();
      }
      t.row()
          .cell(name)
          .cell(std::string(workloads::benchmark_source(name)))
          .cell(wcet, 0)
          .cell(mx)
          .cell(total / prog.num_blocks());
    }
    t.print();
  }

  std::printf("\n=== Fig 5.5: speedup vs analysis time (MLGP vs IS) ===\n");
  if (random_matching)
    std::printf("(ablation: MLGP random matching instead of gain/area)\n");
  for (const char* name : bench_names) {
    auto pp = profile(name);
    std::printf("\n--- %s (SW = %.3g cycles) ---\n", name, pp.sw_cycles);
    util::Table t({"algorithm", "time(s)", "CIs", "speedup", "completed"});

    // MLGP over hot blocks, recording the trajectory per block processed.
    {
      mlgp::MlgpOptions opts;
      opts.ratio_matching = !random_matching;
      util::Rng rng(7);
      util::Stopwatch sw;
      double gain = 0;
      std::size_t cis = 0;
      for (int b : pp.hot_blocks) {
        if (pp.counts[static_cast<std::size_t>(b)] == 0) continue;
        auto out = mlgp::generate_for_block(
            pp.prog.block(b).dfg, lib, opts, rng, b,
            static_cast<double>(pp.counts[static_cast<std::size_t>(b)]));
        for (const auto& c : out) gain += c.total_gain();
        cis += out.size();
        char label[32];
        std::snprintf(label, sizeof label, "MLGP (+bb%d)", b);
        t.row()
            .cell(label)
            .cell(sw.seconds(), 3)
            .cell(cis)
            .cell(pp.sw_cycles / (pp.sw_cycles - gain), 3)
            .cell("yes");
      }
    }

    // IS over hot blocks under a global budget.
    {
      mlgp::IsOptions opts;
      opts.per_cut_time_budget = 5;
      opts.total_time_budget = 20;
      util::Stopwatch sw;
      double gain = 0;
      std::size_t cuts = 0;
      bool completed = true;
      for (int b : pp.hot_blocks) {
        if (pp.counts[static_cast<std::size_t>(b)] == 0) continue;
        if (sw.seconds() > opts.total_time_budget) {
          completed = false;
          break;
        }
        mlgp::IsOptions block_opts = opts;
        block_opts.total_time_budget = opts.total_time_budget - sw.seconds();
        auto res = mlgp::iterative_selection(
            pp.prog.block(b).dfg, lib, block_opts, b,
            static_cast<double>(pp.counts[static_cast<std::size_t>(b)]));
        completed = completed && res.completed;
        for (const auto& s : res.steps) gain += s.ci.total_gain();
        cuts += res.steps.size();
        char label[32];
        std::snprintf(label, sizeof label, "IS   (+bb%d)", b);
        t.row()
            .cell(label)
            .cell(sw.seconds(), 3)
            .cell(cuts)
            .cell(pp.sw_cycles / (pp.sw_cycles - gain), 3)
            .cell(res.completed ? "yes" : "NO (budget)");
      }
      (void)completed;
    }
    t.print();
  }
  std::printf("\npaper: MLGP completes every benchmark within ~10 s; IS "
              "needs >1000 s on large-block benchmarks and never finishes "
              "3des\n");
  return 0;
}
