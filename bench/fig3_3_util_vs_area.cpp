// Table 3.1 + Fig 3.3: utilization versus hardware area for six task sets
// under EDF and RMS at software utilizations U in {0.8, 1.0, 1.05, 1.08,
// 1.1}.
//
// Paper shapes to reproduce:
//   * utilization decreases monotonically with the area budget;
//   * EDF and RMS pick identical selections at U = 0.8 (everything already
//     schedulable);
//   * for U > 1.0 the task set becomes schedulable under EDF at a smaller
//     area than under RMS (RMS needs the exact Theorem-1 test to pass);
//   * substantial average utilization reduction at 50-75% of MaxArea.
#include <cstdio>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  std::printf("=== Table 3.1: composition of task sets ===\n\n");
  {
    util::Table t({"task set", "benchmarks"});
    int i = 1;
    for (const auto& names : workloads::ch3_tasksets()) {
      std::string all;
      for (const auto& n : names) all += (all.empty() ? "" : ", ") + n;
      t.row().cell(i++).cell(all);
    }
    t.print();
  }

  std::printf("\n=== Fig 3.3: utilization vs area ===\n");
  const double utils[] = {0.8, 1.0, 1.05, 1.08, 1.1};
  double sum_red50 = 0, sum_red75 = 0;
  int reductions = 0;

  int set_id = 1;
  for (const auto& names : workloads::ch3_tasksets()) {
    std::printf("\n--- task set %d ---\n", set_id++);
    util::Table t({"U0", "area/Max", "U_EDF", "EDF?", "U_RMS", "RMS?"});
    for (double u0 : utils) {
      auto ts = workloads::make_taskset(names, u0);
      ts.sort_by_period();
      const double max_area = ts.max_area();
      for (double frac = 0; frac <= 1.0001; frac += 0.125) {
        const double budget = frac * max_area;
        const auto edf = customize::select_edf(ts, budget);
        customize::RmsOptions ropts;
        const auto rms = customize::select_rms(ts, budget, ropts);
        t.row()
            .cell(u0, 2)
            .cell(frac, 3)
            .cell(edf.utilization, 4)
            .cell(edf.schedulable ? "yes" : "no")
            .cell(rms.utilization, 4)
            .cell(rms.schedulable ? "yes" : "no");
        if (u0 == 0.8) {
          if (frac == 0.5) {
            sum_red50 += 100 * (1 - edf.utilization / u0);
            ++reductions;
          }
          if (frac == 0.75) sum_red75 += 100 * (1 - edf.utilization / u0);
        }
      }
    }
    t.print();
  }
  std::printf(
      "\naverage utilization reduction at U0=0.8: %.1f%% @ 50%% MaxArea, "
      "%.1f%% @ 75%% MaxArea\n(paper: ~13%% and ~14%% on the Xtensa/XPRES "
      "substrate)\n",
      sum_red50 / reductions, sum_red75 / reductions);
  return 0;
}
