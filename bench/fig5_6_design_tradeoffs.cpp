// Fig 5.6: design trade-offs (speedup vs hardware area) exposed by MLGP and
// IS for individual benchmarks.
//
// Paper shapes: MLGP's cumulative (area, speedup) trajectory generally
// dominates IS's under equal area (IS commits to locally-optimal cuts that
// block later choices); IS produces only partial curves on large-block
// benchmarks.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "isex/mlgp/is_baseline.hpp"
#include "isex/mlgp/mlgp.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

struct Point {
  double area;
  double speedup;
};

/// Cumulative (area, speedup) trajectory from a CI list ordered by
/// gain density (best first), the natural implementation order.
std::vector<Point> trajectory(std::vector<ise::Candidate> cis, double sw) {
  std::sort(cis.begin(), cis.end(),
            [](const ise::Candidate& a, const ise::Candidate& b) {
              const double da =
                  a.est.area > 0 ? a.total_gain() / a.est.area : 1e18;
              const double db =
                  b.est.area > 0 ? b.total_gain() / b.est.area : 1e18;
              return da > db;
            });
  std::vector<Point> out;
  double area = 0, gain = 0;
  for (const auto& c : cis) {
    area += c.est.area;
    gain += c.total_gain();
    out.push_back({area, sw / (sw - gain)});
  }
  return out;
}

void print_pair(const std::vector<Point>& mlgp_pts,
                const std::vector<Point>& is_pts) {
  util::Table t({"algorithm", "area", "speedup"});
  auto dump = [&](const char* name, const std::vector<Point>& pts) {
    const int step = std::max<int>(1, static_cast<int>(pts.size()) / 10);
    for (std::size_t i = 0; i < pts.size();
         i += static_cast<std::size_t>(step))
      t.row().cell(name).cell(pts[i].area, 1).cell(pts[i].speedup, 3);
    if (!pts.empty())
      t.row().cell(name).cell(pts.back().area, 1).cell(pts.back().speedup, 3);
  };
  dump("MLGP", mlgp_pts);
  dump("IS", is_pts);
  t.print();
}

}  // namespace

int main() {
  const auto& lib = hw::CellLibrary::standard_018um();
  for (const char* name :
       {"g721decode", "jfdctint", "blowfish", "md5", "sha", "3des"}) {
    auto prog = workloads::make_benchmark(name);
    const auto cost = ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); });
    const double sw = prog.profile(cost);

    std::vector<ise::Candidate> mlgp_cis, is_cis;
    mlgp::MlgpOptions mopts;
    util::Rng rng(9);
    mlgp::IsOptions iopts;
    iopts.per_cut_time_budget = 4;
    iopts.total_time_budget = 15;
    double is_budget_left = iopts.total_time_budget;
    for (int b = 0; b < prog.num_blocks(); ++b) {
      const auto freq = static_cast<double>(prog.block(b).exec_count);
      if (freq <= 0) continue;
      for (auto& c :
           mlgp::generate_for_block(prog.block(b).dfg, lib, mopts, rng, b, freq))
        mlgp_cis.push_back(std::move(c));
      if (is_budget_left > 0) {
        mlgp::IsOptions bo = iopts;
        bo.total_time_budget = is_budget_left;
        util::Stopwatch sw2;
        auto res = mlgp::iterative_selection(prog.block(b).dfg, lib, bo, b, freq);
        is_budget_left -= sw2.seconds();
        for (auto& s : res.steps) is_cis.push_back(std::move(s.ci));
      }
    }
    std::printf("\n=== Fig 5.6: %s (SW = %.3g cycles) ===\n", name, sw);
    print_pair(trajectory(std::move(mlgp_cis), sw),
               trajectory(std::move(is_cis), sw));
  }
  std::printf("\npaper: MLGP dominates or matches IS at equal area; IS "
              "curves are partial on 3des\n");
  return 0;
}
