// Extension: serve-daemon soak — sustained mixed traffic, measured.
//
// Runs the full isex::serve daemon in-process over real pipes, pushes a
// seeded 10k+ request stream spanning every traffic class (valid selects,
// repeats, over-budget, malformed, wrong-schema, pings) through it with
// concurrent writer/reader threads, and checks the hardened-service
// contract on the way out:
//   * one response line per request line, every one of them well-formed
//     JSON with a definite verdict — zero crashes, zero dropped requests;
//   * under overload the daemon sheds or degrades, never queues without
//     bound: the shed/degrade/overload counters must be nonzero, and no
//     response may take unbounded solver work;
//   * successful selects carry passing certificates; cache hits replay
//     byte-identical result objects.
// Emits BENCH_serve.json (throughput plus p50/p90/p99 per-request latency
// measured at the client side) for the CI artifact upload, and exits
// nonzero on any violated check — the CI serve-soak gate.
//
// With --workers N the soak drives the crash-isolated pool instead of the
// in-process loop, and --chaos p makes each worker sabotage that fraction
// of requests (abort/segv/hang/leak; see isex/supervise/chaos.hpp). Chaos
// decisions are a pure function of the request bytes, so the harness
// recomputes them client-side and checks the supervision contract:
//   * the supervisor survives every worker death (zero supervisor exits,
//     one response per request, all in order);
//   * every response to a *non-chaotic* request carries a result object
//     byte-identical to what a --workers 0 server produces for the same
//     bytes — crash isolation never changes an answer;
//   * crash/respawn/watchdog/quarantine counters and per-worker throughput
//     land in the BENCH json for the CI gates.
//
// Usage: ext_serve_soak [requests] [seed] [-o BENCH_serve.json]
//                       [--workers N] [--chaos p] [--chaos-seed S]
#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "isex/obs/provenance.hpp"
#include "isex/obs/trace.hpp"
#include "isex/serve/json.hpp"
#include "isex/serve/server.hpp"
#include "isex/serve/traffic.hpp"
#include "isex/supervise/chaos.hpp"
#include "isex/util/rng.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (ok) return;
  ++g_failures;
  std::fprintf(stderr, "SOAK FAIL: %s\n", what);
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[i];
}

// Response classes mirroring obs::Disposition, reconstructed client-side
// from the response text (the same precedence the server uses when it
// journals kResponse: cache hit, then shed, then non-Exact status).
constexpr const char* kDispositions[] = {"exact", "degraded", "shed", "cached",
                                         "error"};

int classify_response(const std::string& line, bool ok) {
  if (!ok) return 4;
  if (line.find("\"cache\":\"hit\"") != std::string::npos) return 3;
  if (line.find("\"shed_rung\":1") != std::string::npos ||
      line.find("\"shed_rung\":2") != std::string::npos)
    return 2;
  if (line.find("\"status\":\"Degraded\"") != std::string::npos ||
      line.find("\"status\":\"BudgetTruncated\"") != std::string::npos)
    return 1;
  return 0;
}

void write_latency_block(std::ostream& out, std::vector<double>& v) {
  out << "{\"count\": " << v.size() << ", \"p50\": " << percentile(v, 0.50)
      << ", \"p90\": " << percentile(v, 0.90)
      << ", \"p99\": " << percentile(v, 0.99) << "}";
}

/// The balanced-brace object starting at `"key":` in a flat JSON rendering,
/// or "null" when absent (used to lift the introspect worker_pool object
/// into the bench artifact verbatim).
std::string extract_object(const std::string& s, const std::string& key) {
  const std::size_t k = s.find("\"" + key + "\":");
  if (k == std::string::npos) return "null";
  std::size_t i = s.find('{', k);
  if (i == std::string::npos) return "null";
  int depth = 0;
  bool in_string = false;
  for (std::size_t j = i; j < s.size(); ++j) {
    const char c = s[j];
    if (in_string) {
      if (c == '\\') ++j;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}' && --depth == 0) return s.substr(i, j - i + 1);
  }
  return "null";
}

/// The stable `result` object tail of a success envelope ("" when absent).
std::string result_tail(const std::string& s) {
  const std::size_t p = s.find("\"result\":");
  return p == std::string::npos ? std::string() : s.substr(p);
}

}  // namespace

int main(int argc, char** argv) {
  long requests = 10000;
  unsigned long long seed = 20070613;
  std::string out_path = "BENCH_serve.json";
  int workers = 0;
  double chaos = 0;
  unsigned long long chaos_seed = 20070613;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
      workers = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc)
      chaos = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--chaos-seed") == 0 && i + 1 < argc)
      chaos_seed = std::strtoull(argv[++i], nullptr, 10);
    else if (++positional == 1)
      requests = std::max(1L, std::atol(argv[i]));
    else
      seed = std::strtoull(argv[i], nullptr, 10);
  }

  // Warm the benchmark curve cache so the soak measures serving, not the
  // one-time curve construction of the five small kernels. With workers the
  // warm curves are inherited copy-on-write by every forked worker.
  for (const char* b : {"crc32", "sha", "adpcm_enc", "adpcm_dec",
                        "stringsearch"})
    workloads::cached_task(b);

  // A small queue with aggressive shedding thresholds guarantees the
  // overload machinery actually engages under the full-speed pipe writer.
  serve::ServerOptions so;
  so.queue_capacity = 16;
  so.shed1_depth = 4;
  so.shed2_depth = 8;
  so.default_time_budget_seconds = 0.5;
  so.default_node_budget = 500'000;
  if (workers > 0) {
    // Pool mode trades the overload experiment for a determinism one: the
    // byte-identity check below needs every request answered from shed rung
    // 0 with no admission rejects and no wall-clock truncation (node budgets
    // stay, they are deterministic). Hangs must cost a bounded watchdog
    // deadline, not the 0.5s default budget times a retry.
    so.workers = workers;
    so.chaos_probability = chaos;
    so.chaos_seed = chaos_seed;
    so.queue_capacity = static_cast<int>(
        std::min<long>(requests, 1'000'000));
    so.shed1_depth = INT_MAX / 4;
    so.shed2_depth = INT_MAX / 2;
    so.default_time_budget_seconds = 5.0;
    so.watchdog_seconds = 1.0;
    so.watchdog_grace_seconds = 0.5;
    // A 5% chaos stream IS a restart storm; the breaker (its own unit- and
    // lifecycle-tested path) would open immediately and turn the rest of the
    // run into fast-fails. The soak measures survival-under-churn instead.
    so.breaker_max_respawns = INT_MAX / 2;
  }
  serve::Server server(so);

  int in[2], out[2];
  if (::pipe(in) != 0 || ::pipe(out) != 0) {
    std::fprintf(stderr, "pipe() failed\n");
    return 1;
  }

  util::Rng rng(seed);
  serve::TrafficOptions topts;
  std::thread writer([&] {
    for (long i = 0; i < requests; ++i) {
      std::string line =
          serve::make_traffic_line(rng, static_cast<int>(i), topts);
      line += '\n';
      std::size_t off = 0;
      while (off < line.size()) {
        const ssize_t n =
            ::write(in[1], line.data() + off, line.size() - off);
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
      }
    }
    ::close(in[1]);
  });

  std::string blob;
  std::vector<double> latencies_ms;  // client-observed inter-response gaps
  std::thread reader([&] {
    char buf[1 << 16];
    std::int64_t last = obs::clock_ns();
    for (;;) {
      const ssize_t n = ::read(out[0], buf, sizeof buf);
      if (n <= 0) break;
      const std::int64_t now = obs::clock_ns();
      for (ssize_t k = 0; k < n; ++k)
        if (buf[k] == '\n') {
          latencies_ms.push_back(static_cast<double>(now - last) / 1e6);
          last = now;
        }
      blob.append(buf, static_cast<std::size_t>(n));
    }
  });

  const std::int64_t t0 = obs::clock_ns();
  const int rc = server.run(in[0], out[1]);
  const double elapsed_s = static_cast<double>(obs::clock_ns() - t0) / 1e9;
  ::close(out[1]);
  ::close(in[0]);
  writer.join();
  reader.join();
  ::close(out[0]);

  check(rc == 0, "server.run returned nonzero");

  // One well-formed verdict per request, in order.
  long lines = 0, ok_lines = 0, err_lines = 0, shed = 0, degraded = 0,
       overload = 0, cache_hits = 0;
  std::vector<double> lat_by_class[5];  // indexed like kDispositions
  std::size_t start = 0;
  while (start < blob.size()) {
    std::size_t nl = blob.find('\n', start);
    if (nl == std::string::npos) nl = blob.size();
    const std::string line = blob.substr(start, nl - start);
    start = nl + 1;
    ++lines;
    const serve::JsonParseResult parsed = serve::json_parse(line);
    if (!parsed.ok()) {
      check(false, "response is not well-formed JSON");
      continue;
    }
    const serve::Json* okf = parsed.value.find("ok");
    if (okf == nullptr || !okf->is_bool()) {
      check(false, "response lacks an ok verdict");
      continue;
    }
    if (okf->as_bool()) ++ok_lines; else ++err_lines;
    if (line.find("\"shed_rung\":1") != std::string::npos ||
        line.find("\"shed_rung\":2") != std::string::npos)
      ++shed;
    if (line.find("\"status\":\"Degraded\"") != std::string::npos ||
        line.find("\"status\":\"BudgetTruncated\"") != std::string::npos)
      ++degraded;
    if (line.find("\"code\":\"overload\"") != std::string::npos) ++overload;
    if (line.find("\"cache\":\"hit\"") != std::string::npos) ++cache_hits;
    const std::size_t li = static_cast<std::size_t>(lines - 1);
    if (li < latencies_ms.size())
      lat_by_class[classify_response(line, okf->as_bool())].push_back(
          latencies_ms[li]);
  }
  check(lines == requests, "response count != request count");
  check(ok_lines > 0, "no successful responses at all");
  check(err_lines > 0, "no error responses on a hostile stream");
  if (workers == 0) {
    // The overload machinery must have engaged: shed rungs, degraded
    // results, or admission rejections (a fast machine may clear the queue
    // via any mix). Pool mode configures overload away (see above).
    check(shed + overload + degraded > 0,
          "no shedding/degradation/overload under a full-speed stream");
  }
  check(server.stats().internal_errors == 0, "internal errors during soak");

  // Pool mode: replay the generator (same seed -> same bytes) to check
  // response ordering and non-chaotic byte identity against a --workers 0
  // reference server running the exact same configuration.
  long chaotic_requests = 0, byte_mismatches = 0, compared = 0,
       collateral_errors = 0;
  if (workers > 0) {
    serve::ServerOptions ref_so = so;
    ref_so.workers = 0;
    ref_so.chaos_probability = 0;
    serve::Server reference(ref_so);
    util::Rng rng2(seed);
    std::vector<std::string> responses;
    responses.reserve(static_cast<std::size_t>(lines));
    std::size_t rstart = 0;
    while (rstart < blob.size()) {
      std::size_t nl = blob.find('\n', rstart);
      if (nl == std::string::npos) nl = blob.size();
      responses.push_back(blob.substr(rstart, nl - rstart));
      rstart = nl + 1;
    }
    for (long i = 0; i < requests &&
                     i < static_cast<long>(responses.size()); ++i) {
      const std::string req =
          serve::make_traffic_line(rng2, static_cast<int>(i), topts);
      const std::string& resp = responses[static_cast<std::size_t>(i)];
      const std::string id_token =
          "\"id\":\"t" + std::to_string(i) + "\"";
      // In-order contract: response i answers request i, checkable whenever
      // the request parses (the malformed band still *contains* the id bytes
      // but is correctly answered with "id":null) and carried its index.
      if (req.find(id_token) != std::string::npos &&
          serve::json_parse(req).ok() &&
          resp.find(id_token) == std::string::npos) {
        check(false, "response out of order (id mismatch at index)");
        static int shown = 0;
        if (++shown <= 3)
          std::fprintf(stderr, "ORDER MISMATCH at %ld:\n  req:  %.200s\n  resp: %.200s\n",
                       i, req.c_str(), resp.c_str());
        continue;
      }
      const supervise::ChaosKind kind =
          supervise::chaos_decision(req, chaos, chaos_seed);
      if (kind != supervise::ChaosKind::kNone) {
        ++chaotic_requests;
        continue;
      }
      // Identity is only defined for deterministic solves: admin commands
      // (stats counters differ by construction) and over-budget traffic
      // (wall-clock truncation is timing-dependent by design) are out.
      if (req.find("\"cmd\":\"select\"") == std::string::npos) continue;
      if (req.find("\"time_budget_ms\":") != std::string::npos) continue;
      const std::string tail = result_tail(resp);
      if (tail.empty()) {
        // Innocent request without a result object: either a legitimate
        // error (malformed/bad schema — the reference answers the same
        // class) or a collateral worker death. Count the latter.
        if (resp.find("worker_") != std::string::npos ||
            resp.find("quarantined") != std::string::npos)
          ++collateral_errors;
        continue;
      }
      const std::string ref_tail = result_tail(reference.handle_line(req));
      ++compared;
      if (tail != ref_tail) {
        ++byte_mismatches;
        if (byte_mismatches <= 3)
          std::fprintf(stderr, "BYTE MISMATCH at %ld:\n  pool: %s\n  ref:  %s\n",
                       i, tail.c_str(), ref_tail.c_str());
      }
    }
    check(byte_mismatches == 0,
          "pool results diverge from the single-process server");
    check(compared > 0, "byte-identity check compared nothing");
    if (chaos > 0) {
      check(chaotic_requests > 0, "chaos enabled but nothing was injected");
      check(server.stats().worker_crashes > 0,
            "chaos enabled but no worker ever crashed");
      check(server.stats().worker_respawns > 0,
            "workers crashed but none were respawned");
    }
  }

  const double throughput =
      elapsed_s > 0 ? static_cast<double>(lines) / elapsed_s : 0;
  const double p50 = percentile(latencies_ms, 0.50);
  const double p90 = percentile(latencies_ms, 0.90);
  const double p99 = percentile(latencies_ms, 0.99);

  std::printf(
      "soak: %ld requests in %.2fs (%.0f req/s), %ld ok / %ld err, "
      "%ld shed, %ld degraded, %ld overload-rejected, %ld cache hits\n"
      "inter-response latency p50 %.3fms p90 %.3fms p99 %.3fms\n",
      lines, elapsed_s, throughput, ok_lines, err_lines, shed, degraded,
      overload, cache_hits, p50, p90, p99);
  if (workers > 0) {
    const auto& st = server.stats();
    std::printf(
        "pool: %d workers, %ld chaotic requests, %llu crashes, %llu timeouts, "
        "%llu respawns, %llu retried, %llu quarantined, %llu breaker opens; "
        "byte identity: %ld compared, %ld mismatches, %ld collateral "
        "errors\n",
        workers, chaotic_requests,
        static_cast<unsigned long long>(st.worker_crashes),
        static_cast<unsigned long long>(st.worker_timeouts),
        static_cast<unsigned long long>(st.worker_respawns),
        static_cast<unsigned long long>(st.requests_retried),
        static_cast<unsigned long long>(st.quarantined),
        static_cast<unsigned long long>(st.breaker_opens), compared,
        byte_mismatches, collateral_errors);
  }

  std::ofstream json(out_path);
  if (json) {
    const auto& st = server.stats();
    json << "{\n  \"provenance\": ";
    obs::write_provenance_json(json, obs::collect_provenance());
    json << ",\n  \"requests\": " << lines
         << ",\n  \"elapsed_seconds\": " << elapsed_s
         << ",\n  \"throughput_rps\": " << throughput
         << ",\n  \"ok\": " << ok_lines << ",\n  \"errors\": " << err_lines
         << ",\n  \"shed_responses\": " << shed
         << ",\n  \"degraded_responses\": " << degraded
         << ",\n  \"overload_rejected\": " << overload
         << ",\n  \"cache_hits\": " << cache_hits
         << ",\n  \"accepted\": " << st.accepted
         << ",\n  \"parse_errors\": " << st.parse_errors
         << ",\n  \"bad_requests\": " << st.bad_requests
         << ",\n  \"solved\": " << st.solved
         << ",\n  \"internal_errors\": " << st.internal_errors
         << ",\n  \"latency_ms\": {\"p50\": " << p50 << ", \"p90\": " << p90
         << ", \"p99\": " << p99 << "},\n  \"latency_by_disposition\": {";
    for (int c = 0; c < 5; ++c) {
      json << (c ? ", " : "") << "\"" << kDispositions[c] << "\": ";
      write_latency_block(json, lat_by_class[c]);
    }
    json << "}";
    if (workers > 0) {
      // The supervision scorecard for the CI chaos gates, plus the live
      // worker_pool introspection object (per-worker handled counts give
      // per-worker throughput against elapsed_seconds).
      json << ",\n  \"workers\": {\"configured\": " << workers
           << ", \"chaos_probability\": " << chaos
           << ", \"chaos_seed\": " << chaos_seed
           << ", \"traffic_seed\": " << seed
           << ", \"chaotic_requests\": " << chaotic_requests
           << ", \"dispatched\": " << st.dispatched
           << ", \"crashes\": " << st.worker_crashes
           << ", \"timeouts\": " << st.worker_timeouts
           << ", \"respawns\": " << st.worker_respawns
           << ", \"retried\": " << st.requests_retried
           << ", \"quarantined\": " << st.quarantined
           << ", \"quarantine_hits\": " << st.quarantine_hits
           << ", \"breaker_opens\": " << st.breaker_opens
           << ", \"breaker_rejected\": " << st.breaker_rejected
           << ", \"collateral_errors\": " << collateral_errors
           << ", \"byte_checked\": " << compared
           << ", \"byte_mismatches\": " << byte_mismatches
           << ", \"pool\": "
           << extract_object(server.render_introspect(0), "worker_pool")
           << "}";
    }
    json << ",\n  \"failures\": " << g_failures << "\n}\n";
  }

  if (g_failures > 0)
    std::fprintf(stderr, "soak: %d failed checks\n", g_failures);
  return g_failures;
}
