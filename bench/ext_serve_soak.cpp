// Extension: serve-daemon soak — sustained mixed traffic, measured.
//
// Runs the full isex::serve daemon in-process over real pipes, pushes a
// seeded 10k+ request stream spanning every traffic class (valid selects,
// repeats, over-budget, malformed, wrong-schema, pings) through it with
// concurrent writer/reader threads, and checks the hardened-service
// contract on the way out:
//   * one response line per request line, every one of them well-formed
//     JSON with a definite verdict — zero crashes, zero dropped requests;
//   * under overload the daemon sheds or degrades, never queues without
//     bound: the shed/degrade/overload counters must be nonzero, and no
//     response may take unbounded solver work;
//   * successful selects carry passing certificates; cache hits replay
//     byte-identical result objects.
// Emits BENCH_serve.json (throughput plus p50/p90/p99 per-request latency
// measured at the client side) for the CI artifact upload, and exits
// nonzero on any violated check — the CI serve-soak gate.
//
// Usage: ext_serve_soak [requests] [seed] [-o BENCH_serve.json]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "isex/obs/provenance.hpp"
#include "isex/obs/trace.hpp"
#include "isex/serve/json.hpp"
#include "isex/serve/server.hpp"
#include "isex/serve/traffic.hpp"
#include "isex/util/rng.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (ok) return;
  ++g_failures;
  std::fprintf(stderr, "SOAK FAIL: %s\n", what);
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[i];
}

// Response classes mirroring obs::Disposition, reconstructed client-side
// from the response text (the same precedence the server uses when it
// journals kResponse: cache hit, then shed, then non-Exact status).
constexpr const char* kDispositions[] = {"exact", "degraded", "shed", "cached",
                                         "error"};

int classify_response(const std::string& line, bool ok) {
  if (!ok) return 4;
  if (line.find("\"cache\":\"hit\"") != std::string::npos) return 3;
  if (line.find("\"shed_rung\":1") != std::string::npos ||
      line.find("\"shed_rung\":2") != std::string::npos)
    return 2;
  if (line.find("\"status\":\"Degraded\"") != std::string::npos ||
      line.find("\"status\":\"BudgetTruncated\"") != std::string::npos)
    return 1;
  return 0;
}

void write_latency_block(std::ostream& out, std::vector<double>& v) {
  out << "{\"count\": " << v.size() << ", \"p50\": " << percentile(v, 0.50)
      << ", \"p90\": " << percentile(v, 0.90)
      << ", \"p99\": " << percentile(v, 0.99) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  long requests = 10000;
  unsigned long long seed = 20070613;
  std::string out_path = "BENCH_serve.json";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (++positional == 1)
      requests = std::max(1L, std::atol(argv[i]));
    else
      seed = std::strtoull(argv[i], nullptr, 10);
  }

  // Warm the benchmark curve cache so the soak measures serving, not the
  // one-time curve construction of the five small kernels.
  for (const char* b : {"crc32", "sha", "adpcm_enc", "adpcm_dec",
                        "stringsearch"})
    workloads::cached_task(b);

  // A small queue with aggressive shedding thresholds guarantees the
  // overload machinery actually engages under the full-speed pipe writer.
  serve::ServerOptions so;
  so.queue_capacity = 16;
  so.shed1_depth = 4;
  so.shed2_depth = 8;
  so.default_time_budget_seconds = 0.5;
  so.default_node_budget = 500'000;
  serve::Server server(so);

  int in[2], out[2];
  if (::pipe(in) != 0 || ::pipe(out) != 0) {
    std::fprintf(stderr, "pipe() failed\n");
    return 1;
  }

  util::Rng rng(seed);
  serve::TrafficOptions topts;
  std::thread writer([&] {
    for (long i = 0; i < requests; ++i) {
      std::string line =
          serve::make_traffic_line(rng, static_cast<int>(i), topts);
      line += '\n';
      std::size_t off = 0;
      while (off < line.size()) {
        const ssize_t n =
            ::write(in[1], line.data() + off, line.size() - off);
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
      }
    }
    ::close(in[1]);
  });

  std::string blob;
  std::vector<double> latencies_ms;  // client-observed inter-response gaps
  std::thread reader([&] {
    char buf[1 << 16];
    std::int64_t last = obs::clock_ns();
    for (;;) {
      const ssize_t n = ::read(out[0], buf, sizeof buf);
      if (n <= 0) break;
      const std::int64_t now = obs::clock_ns();
      for (ssize_t k = 0; k < n; ++k)
        if (buf[k] == '\n') {
          latencies_ms.push_back(static_cast<double>(now - last) / 1e6);
          last = now;
        }
      blob.append(buf, static_cast<std::size_t>(n));
    }
  });

  const std::int64_t t0 = obs::clock_ns();
  const int rc = server.run(in[0], out[1]);
  const double elapsed_s = static_cast<double>(obs::clock_ns() - t0) / 1e9;
  ::close(out[1]);
  ::close(in[0]);
  writer.join();
  reader.join();
  ::close(out[0]);

  check(rc == 0, "server.run returned nonzero");

  // One well-formed verdict per request, in order.
  long lines = 0, ok_lines = 0, err_lines = 0, shed = 0, degraded = 0,
       overload = 0, cache_hits = 0;
  std::vector<double> lat_by_class[5];  // indexed like kDispositions
  std::size_t start = 0;
  while (start < blob.size()) {
    std::size_t nl = blob.find('\n', start);
    if (nl == std::string::npos) nl = blob.size();
    const std::string line = blob.substr(start, nl - start);
    start = nl + 1;
    ++lines;
    const serve::JsonParseResult parsed = serve::json_parse(line);
    if (!parsed.ok()) {
      check(false, "response is not well-formed JSON");
      continue;
    }
    const serve::Json* okf = parsed.value.find("ok");
    if (okf == nullptr || !okf->is_bool()) {
      check(false, "response lacks an ok verdict");
      continue;
    }
    if (okf->as_bool()) ++ok_lines; else ++err_lines;
    if (line.find("\"shed_rung\":1") != std::string::npos ||
        line.find("\"shed_rung\":2") != std::string::npos)
      ++shed;
    if (line.find("\"status\":\"Degraded\"") != std::string::npos ||
        line.find("\"status\":\"BudgetTruncated\"") != std::string::npos)
      ++degraded;
    if (line.find("\"code\":\"overload\"") != std::string::npos) ++overload;
    if (line.find("\"cache\":\"hit\"") != std::string::npos) ++cache_hits;
    const std::size_t li = static_cast<std::size_t>(lines - 1);
    if (li < latencies_ms.size())
      lat_by_class[classify_response(line, okf->as_bool())].push_back(
          latencies_ms[li]);
  }
  check(lines == requests, "response count != request count");
  check(ok_lines > 0, "no successful responses at all");
  check(err_lines > 0, "no error responses on a hostile stream");
  // The overload machinery must have engaged: shed rungs, degraded results,
  // or admission rejections (a fast machine may clear the queue via any mix).
  check(shed + overload + degraded > 0,
        "no shedding/degradation/overload under a full-speed stream");
  check(server.stats().internal_errors == 0, "internal errors during soak");

  const double throughput =
      elapsed_s > 0 ? static_cast<double>(lines) / elapsed_s : 0;
  const double p50 = percentile(latencies_ms, 0.50);
  const double p90 = percentile(latencies_ms, 0.90);
  const double p99 = percentile(latencies_ms, 0.99);

  std::printf(
      "soak: %ld requests in %.2fs (%.0f req/s), %ld ok / %ld err, "
      "%ld shed, %ld degraded, %ld overload-rejected, %ld cache hits\n"
      "inter-response latency p50 %.3fms p90 %.3fms p99 %.3fms\n",
      lines, elapsed_s, throughput, ok_lines, err_lines, shed, degraded,
      overload, cache_hits, p50, p90, p99);

  std::ofstream json(out_path);
  if (json) {
    const auto& st = server.stats();
    json << "{\n  \"provenance\": ";
    obs::write_provenance_json(json, obs::collect_provenance());
    json << ",\n  \"requests\": " << lines
         << ",\n  \"elapsed_seconds\": " << elapsed_s
         << ",\n  \"throughput_rps\": " << throughput
         << ",\n  \"ok\": " << ok_lines << ",\n  \"errors\": " << err_lines
         << ",\n  \"shed_responses\": " << shed
         << ",\n  \"degraded_responses\": " << degraded
         << ",\n  \"overload_rejected\": " << overload
         << ",\n  \"cache_hits\": " << cache_hits
         << ",\n  \"accepted\": " << st.accepted
         << ",\n  \"parse_errors\": " << st.parse_errors
         << ",\n  \"bad_requests\": " << st.bad_requests
         << ",\n  \"solved\": " << st.solved
         << ",\n  \"internal_errors\": " << st.internal_errors
         << ",\n  \"latency_ms\": {\"p50\": " << p50 << ", \"p90\": " << p90
         << ", \"p99\": " << p99 << "},\n  \"latency_by_disposition\": {";
    for (int c = 0; c < 5; ++c) {
      json << (c ? ", " : "") << "\"" << kDispositions[c] << "\": ";
      write_latency_block(json, lat_by_class[c]);
    }
    json << "},\n  \"failures\": " << g_failures << "\n}\n";
  }

  if (g_failures > 0)
    std::fprintf(stderr, "soak: %d failed checks\n", g_failures);
  return g_failures;
}
