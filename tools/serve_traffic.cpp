// serve_traffic — seeded mixed-traffic generator for `isex serve` soaks.
//
//   serve_traffic <count> [seed] [pct-malformed pct-bad-schema pct-overbudget
//                 pct-repeat pct-ping] | isex serve
//
// Emits `count` newline-delimited requests spanning every traffic class the
// daemon must survive (see serve/traffic.hpp). The same arguments always
// produce the same byte stream, so any soak failure replays exactly.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "isex/serve/traffic.hpp"
#include "isex/util/rng.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: serve_traffic <count> [seed] [pct-malformed "
                 "pct-bad-schema pct-overbudget pct-repeat pct-ping]\n");
    return 2;
  }
  const long count = std::strtol(argv[1], nullptr, 10);
  if (count <= 0) {
    std::fprintf(stderr, "serve_traffic: count must be > 0\n");
    return 2;
  }
  const unsigned long long seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2007ull;
  isex::serve::TrafficOptions opts;
  if (argc > 7) {
    opts.pct_malformed = std::atoi(argv[3]);
    opts.pct_bad_schema = std::atoi(argv[4]);
    opts.pct_overbudget = std::atoi(argv[5]);
    opts.pct_repeat = std::atoi(argv[6]);
    opts.pct_ping = std::atoi(argv[7]);
  }
  isex::util::Rng rng(seed);
  for (long i = 0; i < count; ++i) {
    const std::string line =
        isex::serve::make_traffic_line(rng, static_cast<int>(i), opts);
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}
