// isex — command-line driver over the library's public API.
//
//   isex list
//   isex curve <benchmark> [--csv]
//   isex select <U0> <budget-fraction> <edf|rms> <benchmark>...
//   isex pareto <benchmark> <eps>
//   isex iterative <U0> <benchmark>...
//   isex reconfig <num-loops> <seed>
//
// Examples:
//   isex select 1.08 0.5 edf crc32 sha djpeg blowfish
//   isex pareto g721decode 0.69
#include <cstdio>
#include <iostream>
#include <cstring>
#include <string>
#include <vector>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/mlgp/iterative.hpp"
#include "isex/pareto/intra.hpp"
#include "isex/reconfig/algorithms.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  isex list\n"
               "  isex curve <benchmark> [--csv]\n"
               "  isex select <U0> <budget-fraction> <edf|rms> <benchmark>...\n"
               "  isex pareto <benchmark> <eps>\n"
               "  isex iterative <U0> <benchmark>...\n"
               "  isex reconfig <num-loops> <seed>\n");
  return 2;
}

int cmd_list() {
  util::Table t({"benchmark", "source"});
  for (const auto& name : workloads::benchmark_names())
    t.row().cell(name).cell(std::string(workloads::benchmark_source(name)));
  t.print();
  return 0;
}

int cmd_curve(const std::string& bench, bool csv) {
  const auto& task = workloads::cached_task(bench);
  util::Table t({"area", "cycles", "speedup"});
  for (const auto& cfg : task.configs)
    t.row().cell(cfg.area, 2).cell(cfg.cycles, 0).cell(
        task.sw_cycles() / cfg.cycles, 3);
  if (csv)
    t.print_csv(std::cout);
  else
    t.print();
  return 0;
}

int cmd_select(double u0, double frac, const std::string& policy,
               const std::vector<std::string>& benches) {
  auto ts = workloads::make_taskset(benches, u0);
  ts.sort_by_period();
  const double budget = frac * ts.max_area();
  customize::SelectionResult r;
  if (policy == "edf") {
    r = customize::select_edf(ts, budget);
  } else if (policy == "rms") {
    r = customize::select_rms(ts, budget);
  } else {
    return usage();
  }
  util::Table t({"task", "period", "config", "cycles", "area"});
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& cfg =
        ts.tasks[i].configs[static_cast<std::size_t>(r.assignment[i])];
    t.row()
        .cell(ts.tasks[i].name)
        .cell(ts.tasks[i].period, 0)
        .cell(r.assignment[i])
        .cell(cfg.cycles, 0)
        .cell(cfg.area, 1);
  }
  t.print();
  std::printf("\nU = %.4f (%s), area %.1f / %.1f budget\n", r.utilization,
              r.schedulable ? "schedulable" : "NOT schedulable", r.area_used,
              budget);
  return r.schedulable ? 0 : 1;
}

int cmd_pareto(const std::string& bench, double eps) {
  const auto& lib = hw::CellLibrary::standard_018um();
  auto prog = workloads::make_benchmark(bench);
  const auto counts = prog.wcet_counts(ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
  const auto raw =
      select::selection_items(prog, counts, lib, select::CurveOptions{});
  std::vector<std::pair<double, double>> ag;
  for (const auto& it : raw) ag.emplace_back(it.area, it.gain);
  const auto items = pareto::quantize_items(ag, 0.25);
  const double base = select::base_cycles(prog, counts, lib);
  const auto exact = pareto::exact_workload_front(items, base);
  const auto approx = pareto::approx_workload_front(items, base, eps);
  std::printf("exact front: %zu points; eps=%.2f front: %zu points "
              "(cover=%s)\n\n",
              exact.size(), eps, approx.size(),
              pareto::eps_covers(exact, approx, eps) ? "yes" : "NO");
  util::Table t({"cost(0.25 adders)", "workload"});
  for (const auto& p : approx) t.row().cell(p.cost, 0).cell(p.value, 0);
  t.print();
  return 0;
}

int cmd_iterative(double u0, const std::vector<std::string>& benches) {
  const auto& lib = hw::CellLibrary::standard_018um();
  std::vector<mlgp::IterTask> tasks;
  for (const auto& n : benches)
    tasks.emplace_back(n, workloads::make_benchmark(n), 0.0);
  for (auto& t : tasks) {
    const double wcet = t.program.wcet(ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
    t.period = wcet / (u0 / static_cast<double>(tasks.size()));
  }
  util::Rng rng(2007);
  const auto res = iterative_customize(tasks, lib, mlgp::IterativeOptions{}, rng);
  util::Table t({"iter", "task", "U", "area", "time(s)"});
  for (const auto& rec : res.trace)
    t.row()
        .cell(rec.iteration)
        .cell(rec.task)
        .cell(rec.utilization, 4)
        .cell(rec.area, 1)
        .cell(rec.elapsed_seconds, 3);
  t.print();
  std::printf("\nfinal U = %.4f (%s), %zu CIs, area %.1f\n", res.utilization,
              res.met_target ? "schedulable" : "NOT schedulable",
              res.selected.size(), res.area);
  return res.met_target ? 0 : 1;
}

int cmd_reconfig(int n, std::uint64_t seed) {
  util::Rng gen(seed);
  const auto p = reconfig::synthetic_problem(n, gen);
  util::Rng rng(seed + 1);
  const auto iter = reconfig::iterative_partition(p, rng);
  const auto greedy = reconfig::greedy_partition(p);
  util::Table t({"algorithm", "configs", "gain", "reconfigs", "net gain"});
  auto row = [&](const char* name, const reconfig::Solution& s) {
    t.row()
        .cell(name)
        .cell(s.num_configs())
        .cell(reconfig::raw_gain(p, s), 0)
        .cell(reconfig::count_reconfigurations(p, s))
        .cell(reconfig::net_gain(p, s), 0);
  };
  row("iterative", iter);
  row("greedy", greedy);
  if (n <= 10) {
    const auto ex = reconfig::exhaustive_partition(p);
    row("optimal", ex.solution);
  }
  t.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    if (args[0] == "list") return cmd_list();
    if (args[0] == "curve" && args.size() >= 2)
      return cmd_curve(args[1], args.size() > 2 && args[2] == "--csv");
    if (args[0] == "select" && args.size() >= 5)
      return cmd_select(std::stod(args[1]), std::stod(args[2]), args[3],
                        {args.begin() + 4, args.end()});
    if (args[0] == "pareto" && args.size() == 3)
      return cmd_pareto(args[1], std::stod(args[2]));
    if (args[0] == "iterative" && args.size() >= 3)
      return cmd_iterative(std::stod(args[1]), {args.begin() + 2, args.end()});
    if (args[0] == "reconfig" && args.size() == 3)
      return cmd_reconfig(std::stoi(args[1]),
                          static_cast<std::uint64_t>(std::stoull(args[2])));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
