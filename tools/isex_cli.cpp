// isex — thin entry point; the whole driver lives in isex::cli::run so the
// test suite and the fuzz harness can exercise it in-process.
#include "isex/cli/driver.hpp"

int main(int argc, char** argv) {
  return isex::cli::run({argv + 1, argv + argc});
}
