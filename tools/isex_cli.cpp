// isex — thin entry point; the whole driver lives in isex::cli::run so the
// test suite and the fuzz harness can exercise it in-process. Signal
// handlers are installed only here: library callers and in-process tests
// keep their own signal disposition.
#include "isex/cli/driver.hpp"
#include "isex/serve/server.hpp"

int main(int argc, char** argv) {
  isex::serve::install_signal_handlers();
  return isex::cli::run({argv + 1, argv + argc});
}
