// bench_compare — the perf-regression gate: diffs a fresh BENCH_*.json
// against a committed baseline with per-metric thresholds and a nonzero
// exit on regression, so CI can fail a PR on "this made serving slower"
// instead of a human eyeballing two JSON blobs.
//
//   bench_compare self_profile <baseline.json> <fresh.json> [options]
//   bench_compare micro        <baseline.json> <fresh.json> [options]
//   bench_compare serve        <baseline.json> <fresh.json> [options]
//   bench_compare parallel     <baseline.json> <fresh.json> [options]
//   bench_compare lift         <baseline.json> <fresh.json> [options]
//
// Options:
//   --force            compare even when the provenance check refuses
//   --out report.json  write a machine-readable comparison report
//
// Exit codes: 0 within thresholds, 1 regression, 2 usage / unreadable
// input / provenance refusal.
//
// Provenance refusal (the whole reason this tool exists — the original
// BENCH_micro.json baseline was recorded in a debug build at load ~15):
// both files must carry a "provenance" object, the build types must match
// and not be Debug, and neither run may have happened on a machine whose
// 1-minute load average exceeded 2x its CPU count. --force downgrades all
// of that to warnings for local spelunking; CI never passes --force.
//
// Thresholds are deliberately loose (1.5x-2.5x) because CI machines are
// noisy; the gate exists to catch step-function regressions (an algorithm
// losing its pruning, a lock on the hot path), not 5% drift. Deterministic
// work counters get a tight 10% band — they should not move at all unless
// the algorithm changed.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "isex/serve/json.hpp"
#include "isex/util/file.hpp"

using namespace isex;
using serve::Json;

namespace {

struct Check {
  std::string metric;
  double base = 0, fresh = 0, limit = 0;
  bool ok = true;
  std::string note;  // "ratio 1.32 <= 1.50", "skipped: below noise floor"
};

std::vector<Check> g_checks;
int g_regressions = 0;

void record(const std::string& metric, double base, double fresh, double limit,
            bool ok, std::string note) {
  g_checks.push_back({metric, base, fresh, limit, ok, std::move(note)});
  if (!ok) {
    ++g_regressions;
    std::fprintf(stderr, "REGRESSION %-48s base %.4g fresh %.4g (%s)\n",
                 metric.c_str(), base, fresh, g_checks.back().note.c_str());
  }
}

/// fresh/base must stay <= limit. Values below `floor` on both sides are
/// noise (sub-resolution timings, tiny counters) and pass unconditionally.
void check_ratio(const std::string& metric, double base, double fresh,
                 double limit, double floor) {
  if (base < floor && fresh < floor) {
    record(metric, base, fresh, limit, true, "skipped: below noise floor");
    return;
  }
  if (base <= 0) {
    record(metric, base, fresh, limit, fresh < floor, "baseline is zero");
    return;
  }
  const double ratio = fresh / base;
  char note[64];
  std::snprintf(note, sizeof note, "ratio %.2f vs limit %.2f", ratio, limit);
  record(metric, base, fresh, limit, ratio <= limit, note);
}

/// Symmetric drift band for deterministic counters: |fresh-base|/base <= tol.
void check_drift(const std::string& metric, double base, double fresh,
                 double tol, double floor) {
  if (base < floor && fresh < floor) {
    record(metric, base, fresh, tol, true, "skipped: below noise floor");
    return;
  }
  const double drift = base > 0 ? std::fabs(fresh - base) / base : 1.0;
  char note[64];
  std::snprintf(note, sizeof note, "drift %.1f%% vs band %.0f%%", drift * 100,
                tol * 100);
  record(metric, base, fresh, tol, drift <= tol, note);
}

/// fresh must not fall below base/limit (throughput-style: bigger is better).
void check_floor_ratio(const std::string& metric, double base, double fresh,
                       double limit) {
  if (base <= 0) {
    record(metric, base, fresh, limit, true, "baseline is zero");
    return;
  }
  const double ratio = base / (fresh > 0 ? fresh : 1e-9);
  char note[64];
  std::snprintf(note, sizeof note, "slowdown %.2fx vs limit %.2fx", ratio,
                limit);
  record(metric, base, fresh, limit, ratio <= limit, note);
}

double num(const Json* v, double fallback = 0) {
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

const Json* path(const Json& root, std::initializer_list<const char*> keys) {
  const Json* v = &root;
  for (const char* k : keys) {
    v = v->find(k);
    if (v == nullptr) return nullptr;
  }
  return v;
}

bool load_json(const std::string& file, Json* out) {
  // BENCH files arrive from artifact downloads and arbitrary CLI paths:
  // ingest through the shared bounded reader (128 MiB is far above any real
  // report) so a wrong path never streams gigabytes into memory.
  util::FileReadResult r_file = util::read_file_bounded(file, 128u << 20);
  if (!r_file.ok) {
    std::fprintf(stderr, "error: %s\n", r_file.error.c_str());
    return false;
  }
  // BENCH files can be large (google-benchmark reports, full metric
  // registries): raise the request-parser ceilings rather than growing a
  // third JSON implementation.
  serve::JsonLimits limits;
  limits.max_values = 1 << 22;
  limits.max_string_bytes = 1 << 20;
  limits.max_depth = 128;
  serve::JsonParseResult r = serve::json_parse(
      std::string_view(reinterpret_cast<const char*>(r_file.data.data()),
                       r_file.data.size()),
      limits);
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", file.c_str(), r.error.c_str());
    return false;
  }
  *out = std::move(r.value);
  return true;
}

std::string prov_string(const Json* prov, const char* key) {
  const Json* v = prov != nullptr ? prov->find(key) : nullptr;
  return v != nullptr && v->is_string() ? v->as_string() : "";
}

/// Returns true when the two runs are comparable. Every refusal is printed;
/// with force=true refusals degrade to warnings.
bool check_provenance(const Json& base, const Json& fresh, bool force) {
  bool ok = true;
  auto refuse = [&](const std::string& why) {
    std::fprintf(stderr, "%s: %s\n",
                 force ? "warning (--force)" : "provenance refusal",
                 why.c_str());
    ok = false;
  };
  const Json* bp = base.find("provenance");
  const Json* fp = fresh.find("provenance");
  if (bp == nullptr || fp == nullptr) {
    refuse("missing \"provenance\" object (regenerate with a current build)");
    return ok || force;
  }
  const std::string bt = prov_string(bp, "build_type");
  const std::string ft = prov_string(fp, "build_type");
  if (bt != ft)
    refuse("build types differ (" + bt + " vs " + ft +
           "): timings are not comparable");
  if (bt == "Debug" || ft == "Debug")
    refuse("Debug-build timings gate nothing; use Release/RelWithDebInfo");
  for (const auto* p : {bp, fp}) {
    const double load = num(p->find("load_avg_1m"), -1);
    const double cpus = num(p->find("num_cpus"), 0);
    if (load >= 0 && cpus > 0 && load > 2.0 * cpus) {
      char msg[128];
      std::snprintf(msg, sizeof msg,
                    "run recorded at load %.1f on %.0f cpus (%s)", load, cpus,
                    p == bp ? "baseline" : "fresh");
      refuse(msg);
    }
  }
  return ok || force;
}

// --- self_profile: per-kernel phase seconds + deterministic counters ------

const Json* find_kernel(const Json& report, const std::string& name) {
  const Json* kernels = report.find("kernels");
  if (kernels == nullptr || !kernels->is_array()) return nullptr;
  for (const Json& k : kernels->items()) {
    const Json* n = k.find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return &k;
  }
  return nullptr;
}

void compare_self_profile(const Json& base, const Json& fresh) {
  const Json* kernels = base.find("kernels");
  if (kernels == nullptr || !kernels->is_array()) {
    record("self_profile.kernels", 0, 0, 0, false, "baseline has no kernels");
    return;
  }
  for (const Json& bk : kernels->items()) {
    const Json* n = bk.find("name");
    if (n == nullptr || !n->is_string()) continue;
    const std::string name = n->as_string();
    const Json* fk = find_kernel(fresh, name);
    if (fk == nullptr) {
      record("self_profile." + name, 1, 0, 0, false, "kernel missing in fresh");
      continue;
    }
    // Wall time: 1.5x with a 50ms floor (the small kernels finish in
    // microseconds and would flap on scheduler noise).
    check_ratio("self_profile." + name + ".total_seconds",
                num(bk.find("total_seconds")), num(fk->find("total_seconds")),
                1.5, 0.05);
    // Work counters are deterministic per phase: 10% band, ignore tiny ones.
    const Json* bph = bk.find("phases");
    const Json* fph = fk->find("phases");
    if (bph == nullptr || fph == nullptr || !bph->is_array() ||
        !fph->is_array() || bph->items().size() != fph->items().size())
      continue;
    for (std::size_t p = 0; p < bph->items().size(); ++p) {
      const Json* bc = bph->items()[p].find("counters");
      const Json* fc = fph->items()[p].find("counters");
      const Json* phase = bph->items()[p].find("phase");
      if (bc == nullptr || fc == nullptr || !bc->is_object()) continue;
      const std::string pname =
          phase != nullptr && phase->is_string() ? phase->as_string() : "?";
      for (const auto& [cname, bval] : bc->members()) {
        if (!bval.is_number()) continue;
        check_drift("self_profile." + name + "." + pname + "." + cname,
                    bval.as_number(), num(fc->find(cname)), 0.10, 100);
      }
    }
  }
}

// --- micro: google-benchmark real_time per benchmark ----------------------

void compare_micro(const Json& base, const Json& fresh) {
  const Json* bb = path(base, {"benchmark", "benchmarks"});
  const Json* fb = path(fresh, {"benchmark", "benchmarks"});
  if (bb == nullptr || fb == nullptr || !bb->is_array() || !fb->is_array()) {
    record("micro.benchmarks", 0, 0, 0, false,
           "missing benchmark.benchmarks array");
    return;
  }
  for (const Json& b : bb->items()) {
    const Json* n = b.find("name");
    if (n == nullptr || !n->is_string()) continue;
    const std::string name = n->as_string();
    const Json* match = nullptr;
    for (const Json& f : fb->items()) {
      const Json* fn = f.find("name");
      if (fn != nullptr && fn->is_string() && fn->as_string() == name) {
        match = &f;
        break;
      }
    }
    if (match == nullptr) {
      record("micro." + name, 1, 0, 0, false, "benchmark missing in fresh");
      continue;
    }
    // real_time is in the report's time_unit (ns here); 2x with a 100us
    // floor — the sub-100us benchmarks are dominated by timer noise.
    check_ratio("micro." + name + ".real_time", num(b.find("real_time")),
                num(match->find("real_time")), 2.0, 100'000);
  }
}

// --- serve: throughput, tail latency, correctness counters ----------------

void compare_serve(const Json& base, const Json& fresh) {
  // The soak's own checks must have passed, and the server must be clean.
  record("serve.failures", num(base.find("failures")),
         num(fresh.find("failures")), 0,
         num(fresh.find("failures")) == 0, "must be zero");
  record("serve.internal_errors", num(base.find("internal_errors")),
         num(fresh.find("internal_errors")), 0,
         num(fresh.find("internal_errors")) == 0, "must be zero");
  check_floor_ratio("serve.throughput_rps", num(base.find("throughput_rps")),
                    num(fresh.find("throughput_rps")), 1.6);
  for (const char* p : {"p50", "p90", "p99"})
    check_ratio(std::string("serve.latency_ms.") + p,
                num(path(base, {"latency_ms", p})),
                num(path(fresh, {"latency_ms", p})), 2.5, 0.05);
  // Per-disposition tails, where both runs saw enough samples to mean
  // anything (the shed/degraded classes can be near-empty on a fast box).
  for (const char* d : {"exact", "degraded", "shed", "cached", "error"}) {
    const Json* bd = path(base, {"latency_by_disposition", d});
    const Json* fd = path(fresh, {"latency_by_disposition", d});
    if (bd == nullptr || fd == nullptr) continue;
    if (num(bd->find("count")) < 20 || num(fd->find("count")) < 20) continue;
    check_ratio(std::string("serve.latency_by_disposition.") + d + ".p90",
                num(bd->find("p90")), num(fd->find("p90")), 2.5, 0.05);
  }
  // Worker-pool soak (--workers N): the supervision scorecard. Absent in
  // both runs (old baselines, single-process soaks) is fine; a fresh run
  // that *dropped* the block while the baseline has one is a regression.
  const Json* bw = base.find("workers");
  const Json* fw = fresh.find("workers");
  if (fw == nullptr) {
    if (bw != nullptr)
      record("serve.workers", 1, 0, 0, false,
             "baseline has a workers block, fresh run does not");
    return;
  }
  // Byte identity and supervisor health are correctness, not perf:
  // zero-tolerance regardless of what the baseline recorded.
  record("serve.workers.byte_mismatches", num(bw ? bw->find("byte_mismatches")
                                                 : nullptr),
         num(fw->find("byte_mismatches")), 0,
         num(fw->find("byte_mismatches")) == 0, "must be zero");
  record("serve.workers.collateral_errors",
         num(bw ? bw->find("collateral_errors") : nullptr),
         num(fw->find("collateral_errors")), 0,
         num(fw->find("collateral_errors")) == 0, "must be zero");
  // Chaos produces crashes by design; without chaos the pool must be calm.
  if (num(fw->find("chaos_probability")) == 0) {
    for (const char* k : {"crashes", "timeouts", "quarantined"})
      record(std::string("serve.workers.") + k,
             num(bw ? bw->find(k) : nullptr), num(fw->find(k)), 0,
             num(fw->find(k)) == 0, "must be zero without chaos");
  } else if (bw != nullptr &&
             num(bw->find("chaos_probability")) ==
                 num(fw->find("chaos_probability")) &&
             num(bw->find("chaos_seed")) == num(fw->find("chaos_seed")) &&
             num(bw->find("traffic_seed"), -1) ==
                 num(fw->find("traffic_seed"), -2) &&
             num(base.find("requests"), -1) ==
                 num(fresh.find("requests"), -2)) {
    // Same traffic bytes + same chaos dice: the injected-fault count is a
    // pure function and must not move at all.
    check_drift("serve.workers.chaotic_requests",
                num(bw->find("chaotic_requests")),
                num(fw->find("chaotic_requests")), 0.0, 1);
  }
}

// --- parallel: scaling efficiency + byte-identity of the solver core ------

const Json* find_point(const Json& kernel, int threads) {
  const Json* pts = kernel.find("points");
  if (pts == nullptr || !pts->is_array()) return nullptr;
  for (const Json& p : pts->items())
    if (static_cast<int>(num(p.find("threads"), -1)) == threads) return &p;
  return nullptr;
}

void compare_parallel(const Json& base, const Json& fresh) {
  // Byte identity across thread counts is correctness, not perf: the fresh
  // run must report zero mismatches no matter what the baseline recorded.
  record("parallel.total_byte_mismatches",
         num(base.find("total_byte_mismatches")),
         num(fresh.find("total_byte_mismatches")), 0,
         num(fresh.find("total_byte_mismatches")) == 0, "must be zero");

  const int ncpu = static_cast<int>(num(fresh.find("num_cpus"), 1));
  const Json* kernels = base.find("kernels");
  if (kernels == nullptr || !kernels->is_array()) {
    record("parallel.kernels", 0, 0, 0, false, "baseline has no kernels");
    return;
  }
  for (const Json& bk : kernels->items()) {
    const Json* n = bk.find("name");
    if (n == nullptr || !n->is_string()) continue;
    const std::string name = n->as_string();
    const Json* fk = find_kernel(fresh, name);
    if (fk == nullptr) {
      record("parallel." + name, 1, 0, 0, false, "kernel missing in fresh");
      continue;
    }
    // The serial baseline must not regress (same band as self_profile).
    const Json* b1 = find_point(bk, 1);
    const Json* f1 = find_point(*fk, 1);
    if (b1 != nullptr && f1 != nullptr)
      check_ratio("parallel." + name + ".wall_seconds_t1",
                  num(b1->find("wall_seconds")), num(f1->find("wall_seconds")),
                  1.5, 0.05);
    // Scaling-efficiency floor at the largest measured thread count. A
    // single-CPU runner cannot scale at all — efficiency degenerates into
    // raw overhead — so the floor only gates on multi-core machines.
    const Json* pts = fk->find("points");
    if (pts == nullptr || !pts->is_array()) continue;
    const Json* top = nullptr;
    for (const Json& p : pts->items())
      if (top == nullptr ||
          num(p.find("threads")) > num(top->find("threads")))
        top = &p;
    if (top == nullptr || static_cast<int>(num(top->find("threads"))) <= 1)
      continue;
    const double eff = num(top->find("efficiency"));
    char note[96];
    if (ncpu < 2) {
      std::snprintf(note, sizeof note,
                    "skipped: single-cpu runner (efficiency %.2f)", eff);
      record("parallel." + name + ".efficiency", 0.45, eff, 0.45, true, note);
    } else {
      std::snprintf(note, sizeof note, "efficiency %.2f vs floor 0.45 at %d "
                    "threads on %d cpus",
                    eff, static_cast<int>(num(top->find("threads"))), ncpu);
      record("parallel." + name + ".efficiency", 0.45, eff, 0.45, eff >= 0.45,
             note);
    }
  }
}

// --- lift: frontend throughput + deterministic lift work counters ---------

void compare_lift(const Json& base, const Json& fresh) {
  // The hostile corpus must never produce an internal error — that is the
  // totality contract, gated as correctness regardless of the baseline.
  record("lift.corpus.internal_errors",
         num(path(base, {"corpus", "internal_errors"})),
         num(path(fresh, {"corpus", "internal_errors"})), 0,
         num(path(fresh, {"corpus", "internal_errors"})) == 0, "must be zero");
  // The corpus is seeded: the accept/reject split is a pure function of the
  // generator and the parser, so it must not move at all.
  for (const char* k : {"inputs", "ok", "rejected"})
    check_drift(std::string("lift.corpus.") + k, num(path(base, {"corpus", k})),
                num(path(fresh, {"corpus", k})), 0.0, 1);
  check_floor_ratio("lift.corpus.inputs_per_sec",
                    num(path(base, {"corpus", "inputs_per_sec"})),
                    num(path(fresh, {"corpus", "inputs_per_sec"})), 2.0);

  const Json* fixtures = base.find("fixtures");
  if (fixtures == nullptr || !fixtures->is_array()) {
    record("lift.fixtures", 0, 0, 0, false, "baseline has no fixtures");
    return;
  }
  for (const Json& bf : fixtures->items()) {
    const Json* n = bf.find("name");
    if (n == nullptr || !n->is_string()) continue;
    const std::string name = n->as_string();
    const Json* ff = nullptr;
    if (const Json* arr = fresh.find("fixtures");
        arr != nullptr && arr->is_array()) {
      for (const Json& f : arr->items()) {
        const Json* fn = f.find("name");
        if (fn != nullptr && fn->is_string() && fn->as_string() == name) {
          ff = &f;
          break;
        }
      }
    }
    if (ff == nullptr) {
      record("lift." + name, 1, 0, 0, false, "fixture missing in fresh");
      continue;
    }
    // Work counters are pure functions of the fixture bytes: zero drift.
    // (Changing a fixture or the lifter is exactly when the baseline must be
    // regenerated, and this check is what forces that conversation.)
    for (const char* k :
         {"instructions", "illegal", "blocks", "nodes", "operations"})
      check_drift("lift." + name + "." + k, num(bf.find(k)), num(ff->find(k)),
                  0.0, 0.5);
    // Throughput: 2x floor, same noise philosophy as the serve gate.
    check_floor_ratio("lift." + name + ".insts_per_sec",
                      num(bf.find("insts_per_sec")),
                      num(ff->find("insts_per_sec")), 2.0);
  }
}

void write_report(const std::string& out_path, const std::string& kind,
                  const std::string& base_file, const std::string& fresh_file) {
  util::write_file_atomic(out_path, [&](std::ostream& out) {
    out << "{\n  \"tool\": \"bench_compare\",\n  \"kind\": "
        << serve::json_quote(kind)
        << ",\n  \"baseline\": " << serve::json_quote(base_file)
        << ",\n  \"fresh\": " << serve::json_quote(fresh_file)
        << ",\n  \"regressions\": " << g_regressions << ",\n  \"checks\": [\n";
    for (std::size_t i = 0; i < g_checks.size(); ++i) {
      const Check& c = g_checks[i];
      out << "    {\"metric\": " << serve::json_quote(c.metric)
          << ", \"base\": " << serve::json_number(c.base)
          << ", \"fresh\": " << serve::json_number(c.fresh)
          << ", \"ok\": " << (c.ok ? "true" : "false")
          << ", \"note\": " << serve::json_quote(c.note) << "}"
          << (i + 1 == g_checks.size() ? "" : ",") << "\n";
    }
    out << "  ]\n}\n";
  });
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <self_profile|micro|serve|parallel|lift> "
               "<baseline.json> <fresh.json> [--force] [--out report.json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kind, base_file, fresh_file, out_path;
  bool force = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--force") == 0)
      force = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (argv[i][0] == '-')
      return usage();
    else if (++positional == 1)
      kind = argv[i];
    else if (positional == 2)
      base_file = argv[i];
    else if (positional == 3)
      fresh_file = argv[i];
    else
      return usage();
  }
  if (positional != 3) return usage();
  if (kind != "self_profile" && kind != "micro" && kind != "serve" &&
      kind != "parallel" && kind != "lift")
    return usage();

  Json base, fresh;
  if (!load_json(base_file, &base) || !load_json(fresh_file, &fresh)) return 2;
  if (!check_provenance(base, fresh, force)) {
    std::fprintf(stderr,
                 "bench_compare: refusing to compare (see above); "
                 "--force overrides\n");
    return 2;
  }

  if (kind == "self_profile")
    compare_self_profile(base, fresh);
  else if (kind == "micro")
    compare_micro(base, fresh);
  else if (kind == "parallel")
    compare_parallel(base, fresh);
  else if (kind == "lift")
    compare_lift(base, fresh);
  else
    compare_serve(base, fresh);

  if (!out_path.empty())
    write_report(out_path, kind, base_file, fresh_file);

  std::size_t passed = 0;
  for (const Check& c : g_checks) passed += c.ok ? 1 : 0;
  std::printf("bench_compare %s: %zu/%zu checks within thresholds%s\n",
              kind.c_str(), passed, g_checks.size(),
              g_regressions > 0 ? " — REGRESSION" : "");
  return g_regressions > 0 ? 1 : 0;
}
