// Chapter 5 scenario: top-down iterative co-design. An unschedulable
// four-task system is driven to schedulability by letting MLGP zoom into
// whichever task currently bottlenecks the system.
//
//   $ ./example_iterative_codesign
#include <cstdio>

#include "isex/mlgp/iterative.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  const auto& lib = hw::CellLibrary::standard_018um();

  // Table 5.2 task set 2 at software utilization 1.3.
  const std::vector<std::string> names = {"sha", "jfdctint", "rijndael",
                                          "ndes"};
  std::vector<mlgp::IterTask> tasks;
  for (const auto& n : names)
    tasks.emplace_back(n, workloads::make_benchmark(n), 0.0);
  const double u0 = 1.3;
  for (auto& t : tasks) {
    const double wcet = t.program.wcet(ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
    t.period = wcet / (u0 / static_cast<double>(tasks.size()));
  }
  std::printf("input utilization: %.2f (unschedulable under EDF)\n\n", u0);

  mlgp::IterativeOptions opts;
  util::Rng rng(2007);
  const auto res = iterative_customize(tasks, lib, opts, rng);

  std::printf("%-5s %-10s %-12s %-10s %-8s\n", "iter", "task", "utilization",
              "area", "time(s)");
  for (const auto& rec : res.trace)
    std::printf("%-5d %-10s %-12.4f %-10.1f %-8.3f\n", rec.iteration,
                rec.task.c_str(), rec.utilization, rec.area,
                rec.elapsed_seconds);

  std::printf("\nfinal: U = %.4f (%s), %zu custom instructions, "
              "area %.1f adder-equivalents\n",
              res.utilization,
              res.met_target ? "schedulable" : "NOT schedulable",
              res.selected.size(), res.area);
  return 0;
}
