// Chapter 4 scenario: explore the workload-area and utilization-area design
// spaces, comparing the exact Pareto front against epsilon-approximate
// fronts at several accuracy settings.
//
//   $ ./example_pareto_explorer
#include <cstdio>

#include "isex/pareto/inter.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

pareto::Front task_items_front(const std::string& name, double grid,
                               std::vector<pareto::Item>* items_out,
                               double* base_out) {
  const auto& lib = hw::CellLibrary::standard_018um();
  auto prog = workloads::make_benchmark(name);
  const auto counts = prog.wcet_counts(ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
  select::CurveOptions opts;
  const auto raw = select::selection_items(prog, counts, lib, opts);
  std::vector<std::pair<double, double>> ag;
  for (const auto& it : raw) ag.emplace_back(it.area, it.gain);
  const auto items = pareto::quantize_items(ag, grid);
  const double base = select::base_cycles(prog, counts, lib);
  if (items_out) *items_out = items;
  if (base_out) *base_out = base;
  return pareto::exact_workload_front(items, base);
}

}  // namespace

int main() {
  // Intra-task: g721 decode, as in Fig 4.4(a).
  std::vector<pareto::Item> items;
  double base = 0;
  util::Stopwatch sw;
  const auto exact = task_items_front("g721decode", 0.25, &items, &base);
  const double t_exact = sw.seconds();
  std::printf("g721decode: %zu candidates, base workload %.3g cycles\n",
              items.size(), base);
  std::printf("exact workload-area front: %zu points in %.3f s\n",
              exact.size(), t_exact);

  for (double eps : {0.21, 0.44, 0.69, 3.0}) {
    sw.restart();
    const auto approx = pareto::approx_workload_front(items, base, eps);
    const double t = sw.seconds();
    std::printf(
        "  eps=%.2f: %4zu points (%.1f%% of exact) in %.4f s, "
        "cover=%s, speedup %.0fx\n",
        eps, approx.size(), 100.0 * approx.size() / exact.size(), t,
        pareto::eps_covers(exact, approx, eps) ? "yes" : "NO",
        t > 0 ? t_exact / t : 0.0);
  }

  // Inter-task: a 6-task set.
  std::vector<pareto::TaskMenu> menus;
  for (const auto& name : workloads::ch4_tasksets()[0]) {
    std::vector<pareto::Item> task_items;
    double task_base = 0;
    const auto front = task_items_front(name, 0.25, &task_items, &task_base);
    const double period = task_base * 4;  // ~25% software utilization each
    menus.push_back(pareto::menu_from_front(front, period));
  }
  sw.restart();
  const auto exact_u = pareto::exact_utilization_front(menus);
  const double t_exact_u = sw.seconds();
  std::printf("\ntask set 1 (%zu tasks): exact utilization-area front "
              "%zu points in %.2f s\n",
              menus.size(), exact_u.size(), t_exact_u);
  for (double eps : {0.44, 3.0}) {
    sw.restart();
    const auto approx = pareto::approx_utilization_front(menus, eps);
    std::printf("  eps=%.2f: %4zu points in %.4f s (speedup %.0fx)\n", eps,
                approx.size(), sw.seconds(),
                sw.seconds() > 0 ? t_exact_u / sw.seconds() : 0.0);
  }
  return 0;
}
