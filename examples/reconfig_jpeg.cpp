// Chapter 6 scenario: runtime reconfiguration of custom instructions for a
// JPEG encode/decode pipeline. The fabric cannot hold the custom
// instructions of all eight hot loops at once; spatial + temporal
// partitioning clubs them into configurations swapped as the codec moves
// between phases.
//
//   $ ./example_reconfig_jpeg
#include <cstdio>

#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/jpeg_case.hpp"

using namespace isex;

int main() {
  const auto p = reconfig::jpeg_case_study(/*reconfig_cost=*/20'000,
                                           /*max_area=*/120);

  std::printf("JPEG hot loops (fabric area per configuration: %.0f):\n",
              p.max_area);
  for (const auto& loop : p.loops) {
    std::printf("  %-12s versions:", loop.name.c_str());
    for (const auto& v : loop.versions)
      std::printf(" (%.0f, %.3gK)", v.area, v.gain / 1000);
    std::printf("\n");
  }
  std::printf("trace length: %zu hot-loop entries, rho = %.0fK cycles\n\n",
              p.trace.size(), p.reconfig_cost / 1000);

  util::Rng rng(6);
  const auto iterative = reconfig::iterative_partition(p, rng);
  const auto greedy = reconfig::greedy_partition(p);
  const auto exhaustive = reconfig::exhaustive_partition(p);

  auto report = [&](const char* name, const reconfig::Solution& s) {
    std::printf("%-11s configs=%d  gain=%8.3gK  reconfigs=%4ld  net=%8.3gK\n",
                name, s.num_configs(), raw_gain(p, s) / 1000,
                count_reconfigurations(p, s), net_gain(p, s) / 1000);
  };
  report("iterative", iterative);
  report("greedy", greedy);
  report("optimal", exhaustive.solution);

  std::printf("\nconfiguration membership (iterative):\n");
  for (int c = 0; c < iterative.num_configs(); ++c) {
    std::printf("  config %d:", c);
    for (std::size_t l = 0; l < p.loops.size(); ++l)
      if (iterative.config[l] == c)
        std::printf(" %s(v%d)", p.loops[l].name.c_str(), iterative.version[l]);
    std::printf("\n");
  }
  return 0;
}
