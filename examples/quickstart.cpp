// Quickstart: the core identification -> selection pipeline on a hand-built
// basic block.
//
// Builds the data-flow graph of a small filter kernel, enumerates legal
// custom-instruction candidates under the 4-input / 2-output constraint,
// selects the best set under an area budget, and prints the resulting
// processor configuration.
//
//   $ ./example_quickstart
#include <cstdio>

#include "isex/hw/cell_library.hpp"
#include "isex/ir/program.hpp"
#include "isex/select/config_curve.hpp"

using namespace isex;

int main() {
  const auto& lib = hw::CellLibrary::standard_018um();

  // y = ((a + b) * c) >> s;  z = (a ^ b) + (c & mask)   -- one basic block.
  ir::Program prog("quickstart");
  const int bb = prog.add_block("kernel");
  auto& d = prog.block(bb).dfg;
  const auto a = d.add(ir::Opcode::kInput);
  const auto b = d.add(ir::Opcode::kInput);
  const auto c = d.add(ir::Opcode::kInput);
  const auto s = d.add(ir::Opcode::kConst);
  const auto mask = d.add(ir::Opcode::kConst);
  const auto sum = d.add(ir::Opcode::kAdd, {a, b});
  const auto prod = d.add(ir::Opcode::kMul, {sum, c});
  const auto y = d.add(ir::Opcode::kShr, {prod, s});
  const auto x1 = d.add(ir::Opcode::kXor, {a, b});
  const auto m1 = d.add(ir::Opcode::kAnd, {c, mask});
  const auto z = d.add(ir::Opcode::kAdd, {x1, m1});
  d.mark_live_out(y);
  d.mark_live_out(z);

  // The kernel runs 1000 times per activation.
  prog.set_root(prog.stmt_loop(1000, prog.stmt_block(bb)));

  // Enumerate candidates and print the library.
  ise::EnumOptions eopts;
  const auto cands = ise::enumerate_candidates(d, lib, eopts, bb, 1000);
  std::printf("candidate library: %zu legal custom instructions\n\n",
              cands.size());
  std::printf("%-6s %-6s %-4s %-4s %-10s %-8s %-8s\n", "nodes", "in", "out",
              "hwcy", "gain/exec", "area", "ns");
  for (const auto& cand : cands) {
    if (cand.est.gain_per_exec <= 0) continue;
    std::printf("%-6zu %-6d %-4d %-4d %-10.1f %-8.2f %-8.2f\n",
                cand.nodes.count(), cand.num_inputs, cand.num_outputs,
                cand.est.hw_cycles, cand.est.gain_per_exec, cand.est.area,
                cand.est.latency_ns);
  }

  // Full curve: cycles vs area.
  const auto counts = prog.wcet_counts(ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
  const auto curve =
      select::build_config_curve(prog, counts, lib, select::CurveOptions{});
  std::printf("\nconfiguration curve (area -> cycles):\n");
  for (const auto& pt : curve.points)
    std::printf("  %8.2f -> %10.0f  (speedup %.2fx)\n", pt.area, pt.cycles,
                curve.base_cycles() / pt.cycles);
  return 0;
}
