// Chapter 8 scenario: the wearable bio-monitoring platform. Runs the
// fixed-point beat detector on a synthetic ECG (numeric ground truth), then
// sizes a processor customization for the three monitoring kernels under a
// shared silicon budget with isomorphic sharing.
//
//   $ ./example_biomonitor
#include <cmath>
#include <cstdio>
#include <vector>

#include "isex/biomon/biomon.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/table.hpp"

using namespace isex;

int main() {
  // Synthetic ECG: 8 beats over ~4 seconds at 128 Hz with baseline wander.
  std::vector<double> ecg;
  for (int beat = 0; beat < 8; ++beat) {
    for (int i = 0; i < 62; ++i)
      ecg.push_back(0.05 + 0.02 * std::sin(0.1 * static_cast<double>(i)));
    ecg.push_back(0.9);
    ecg.push_back(-0.4);
  }
  std::printf("fixed-point beat detector: %d beats in %zu samples "
              "(expected 8)\n\n",
              biomon::detect_beats_fixed(ecg, 0.05), ecg.size());

  const auto& lib = hw::CellLibrary::standard_018um();
  util::Table t({"kernel", "SW cycles/frame", "best cycles", "speedup",
                 "CI area"});
  double total_area = 0;
  for (auto& prog : biomon::all_biomon_kernels()) {
    const auto counts = prog.wcet_counts(ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
    const auto curve =
        select::build_config_curve(prog, counts, lib, select::CurveOptions{});
    // Spend half of each kernel's saturation area.
    const auto& cfg = curve.config_at(0.5 * curve.max_area());
    total_area += cfg.area;
    t.row()
        .cell(prog.name())
        .cell(curve.base_cycles(), 0)
        .cell(cfg.cycles, 0)
        .cell(curve.base_cycles() / cfg.cycles, 2)
        .cell(cfg.area, 1);
  }
  t.print();
  std::printf("\ntotal custom-instruction area: %.1f adder-equivalents\n",
              total_area);
  return 0;
}
