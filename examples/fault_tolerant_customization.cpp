// Fault-tolerant customization walkthrough.
//
// The Chapter 3 pipeline proves deadlines are met — assuming exact WCETs and
// always-available custom instructions. This example shows the robustness
// layer end to end on a Table 3.1 task set:
//   1. customize under EDF and ask the sensitivity analysis how wrong the
//      WCETs may be (the critical scaling factor alpha*),
//   2. inject overruns beyond alpha* and compare what the soft, firm and
//      mode-change runtimes each observe,
//   3. knock the CIs out for a window (transient fault) and watch the
//      degradation log,
//   4. buy the margin back: alpha-robust selection and its area cost.
#include <cstdio>

#include "isex/customize/select_edf.hpp"
#include "isex/faults/sensitivity.hpp"
#include "isex/util/table.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  std::printf("=== Fault-tolerant customization (crc32 sha djpeg blowfish) "
              "===\n\n");
  auto ts = workloads::make_taskset({"crc32", "sha", "djpeg", "blowfish"}, 1.05);
  ts.sort_by_period();
  const auto sel = customize::select_edf(ts, 0.5 * ts.max_area());
  const double alpha_star =
      faults::critical_scaling(ts, sel.assignment, rt::Policy::kEdf);
  std::printf("1. selection: U %.4f -> %.4f, area %.1f; the WCETs may inflate "
              "by alpha* = %.4f before any deadline can be missed\n\n",
              ts.sw_utilization(), sel.utilization, sel.area_used, alpha_star);

  // 2. Inject a deterministic overrun 5% beyond the critical factor.
  const auto sim_tasks = faults::to_sim_tasks(ts, sel.assignment);
  // EDF sheds overload onto the latest deadline, so the first miss lands on
  // the longest-period task; run past two of its periods to observe it.
  std::int64_t horizon = 0;
  for (const auto& s : sim_tasks) horizon = std::max(horizon, 2 * s.period);
  const double factor = alpha_star * 1.05;
  std::printf("2. injecting %.3fx execution-time inflation (5%% beyond "
              "alpha*):\n\n", factor);
  util::Table t({"policy", "completed", "missed", "aborted", "events",
                 "first miss", "max resp/period"});
  for (const auto& [name, policy] :
       {std::pair{"soft", rt::MissPolicy::kSoft},
        std::pair{"firm", rt::MissPolicy::kFirm},
        std::pair{"mode-change", rt::MissPolicy::kModeChange}}) {
    faults::FaultModel fault;
    fault.inflation = factor;
    rt::SimOptions so;
    so.policy = rt::Policy::kEdf;
    so.horizon = horizon;
    so.faults = &fault;
    so.miss_policy = policy;
    so.max_misses = 1;
    const auto r = rt::simulate(sim_tasks, so);
    std::int64_t completed = 0, missed = 0, aborted = 0;
    double ratio = 0;
    for (std::size_t i = 0; i < sim_tasks.size(); ++i) {
      completed += r.completed_jobs[i];
      missed += r.missed_jobs[i];
      aborted += r.aborted_jobs[i];
      ratio = std::max(ratio, static_cast<double>(r.worst_response[i]) /
                                  static_cast<double>(sim_tasks[i].period));
    }
    t.row()
        .cell(name)
        .cell(completed)
        .cell(missed)
        .cell(aborted)
        .cell(static_cast<std::int64_t>(r.events.size()))
        .cell(r.misses.empty() ? -1 : r.misses.front().deadline)
        .cell(ratio, 3);
  }
  t.print();
  std::printf("\n   soft lets late jobs cascade; firm sheds them at the "
              "deadline; mode-change degrades repeat offenders to their "
              "deepest configuration and recovers afterwards\n\n");

  // 3. Transient CI-unavailability: the accelerated datapath of the busiest
  // task disappears for two hyperperiod-scale windows.
  faults::FaultModel fault;
  const std::int64_t span = sim_tasks[0].period * 40;
  fault.ci_faults.push_back({0, span, 2 * span});
  rt::SimOptions so;
  so.policy = rt::Policy::kEdf;
  so.faults = &fault;
  so.miss_policy = rt::MissPolicy::kModeChange;
  const auto r = rt::simulate(sim_tasks, so);
  std::int64_t missed = 0;
  for (auto v : r.missed_jobs) missed += v;
  std::printf("3. CI-unavailability window [%lld, %lld) on task '%s': %lld "
              "misses, %zu degradation events, schedule %s outside the "
              "window\n\n",
              static_cast<long long>(span), static_cast<long long>(2 * span),
              ts.tasks[0].name.c_str(), static_cast<long long>(missed),
              r.events.size(), missed == 0 ? "unharmed" : "recovers");

  // 4. What does tolerating 10% WCET error cost in silicon?
  const double a_nom = faults::min_robust_area(ts, 1.0, rt::Policy::kEdf);
  const double a_rob = faults::min_robust_area(ts, 1.1, rt::Policy::kEdf);
  const auto rob = faults::alpha_robust_select(ts, 0.5 * ts.max_area(), 1.1,
                                               rt::Policy::kEdf);
  std::printf("4. alpha-robust selection at alpha=1.1: U %.4f (tolerates "
              "alpha* %.4f); minimum schedulable area %.2f -> %.2f "
              "(robustness costs %.2f adder-equivalents)\n",
              rob.robust.utilization, rob.alpha_star_robust, a_nom, a_rob,
              a_rob - a_nom);
  return 0;
}
