// The anytime, budget-bounded solver layer end to end: run the same
// customization pipeline three times — unlimited, under a generous budget,
// and under a starvation budget — and show how the Outcome protocol reports
// what each run could prove.
//
// The pipeline: select per-task CI configurations for a real task set under
// EDF, with the graceful-degradation ladder (exact DP -> coarse DP -> greedy)
// standing by for when the budget runs out. With no budget the result is
// bit-identical to customize::select_edf; with a budget the run always
// terminates near the deadline with a feasible incumbent, a status, and a
// conservative optimality gap.
//
//   $ ./example_budgeted_pipeline
#include <cstdio>

#include "isex/robust/fallback.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

namespace {

void report(const char* label,
            const robust::Outcome<customize::SelectionResult>& out) {
  std::printf("%-18s U = %.4f (%s)  status=%-15s gap<=%.4f\n", label,
              out.value.utilization,
              out.value.schedulable ? "schedulable" : "NOT schedulable",
              robust::to_string(out.status), out.optimality_gap);
  const auto& b = out.budget;
  std::printf("%-18s %.2f ms elapsed, %ld nodes charged%s%s\n", "",
              b.elapsed_seconds * 1e3, b.nodes_charged,
              b.exhausted() ? ", exhausted: " : "",
              b.exhausted() ? b.reason().c_str() : "");
  if (!out.detail.empty()) std::printf("%-18s rungs: %s\n", "", out.detail.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  auto ts = workloads::make_taskset({"crc32", "sha", "djpeg", "blowfish"},
                                    1.08);
  ts.sort_by_period();
  const double area = 0.5 * ts.max_area();
  std::printf("4 kernels, U_sw = %.3f, area budget %.1f adder-equivalents\n\n",
              ts.sw_utilization(), area);

  // 1. Unlimited: the plain exact DP, reported through the same protocol.
  {
    const auto out = robust::select_edf_with_fallback(
        ts, area, customize::EdfOptions{}, nullptr);
    report("unlimited:", out);
  }

  // 2. A generous wall-clock budget: the DP finishes well inside it.
  {
    robust::Budget b;
    b.set_time_budget(0.5);
    const auto out =
        robust::select_edf_with_fallback(ts, area, customize::EdfOptions{}, &b);
    report("500 ms budget:", out);
  }

  // 3. A starvation work budget: the DP is cut off, the ladder descends to
  // the coarse grid and then the greedy knapsack, and the best incumbent of
  // the three rungs wins — still feasible, with an honest gap.
  {
    robust::Budget b;
    b.set_node_budget(200);
    const auto out =
        robust::select_edf_with_fallback(ts, area, customize::EdfOptions{}, &b);
    report("200-node budget:", out);

    // An anytime result is still a real selection: simulate it.
    std::vector<rt::SimTask> sim;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const auto& cfg =
          ts.tasks[i].configs[static_cast<std::size_t>(out.value.assignment[i])];
      sim.push_back({static_cast<std::int64_t>(cfg.cycles),
                     static_cast<std::int64_t>(ts.tasks[i].period)});
    }
    const auto sr = rt::try_simulate(sim, rt::SimOptions{});
    if (sr.ok())
      std::printf("simulation of the truncated selection: %s over %lld "
                  "cycles\n",
                  sr.value().all_met ? "all deadlines met" : "deadline misses",
                  static_cast<long long>(sr.value().horizon));
    else
      std::printf("simulation rejected: %s\n", sr.error().message.c_str());
  }
  return 0;
}
