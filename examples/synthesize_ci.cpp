// Synthesis scenario: from a benchmark kernel to Verilog modules for its
// selected custom instructions — the full identification -> selection ->
// synthesis path of the design flow (Fig 1.2).
//
//   $ ./example_synthesize_ci [benchmark]     (default: sha)
#include <cstdio>
#include <string>

#include "isex/mlgp/mlgp.hpp"
#include "isex/rtl/verilog.hpp"
#include "isex/workloads/workloads.hpp"

using namespace isex;

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "sha";
  const auto& lib = hw::CellLibrary::standard_018um();
  auto prog = workloads::make_benchmark(bench);
  const auto cost = ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); });
  prog.profile(cost);

  // Hottest block; MLGP carves its custom instructions.
  int hot = 0;
  double best = -1;
  for (int b = 0; b < prog.num_blocks(); ++b) {
    const double w = cost(b, prog.block(b)) *
                     static_cast<double>(prog.block(b).exec_count);
    if (w > best) {
      best = w;
      hot = b;
    }
  }
  util::Rng rng(1);
  auto cis = mlgp::generate_for_block(
      prog.block(hot).dfg, lib, mlgp::MlgpOptions{}, rng, hot,
      static_cast<double>(prog.block(hot).exec_count));
  std::sort(cis.begin(), cis.end(),
            [](const ise::Candidate& a, const ise::Candidate& b) {
              return a.total_gain() > b.total_gain();
            });

  std::printf("// %s: block '%s' (%d ops), %zu custom instructions; "
              "emitting the top 3\n\n",
              bench.c_str(), prog.block(hot).label.c_str(),
              prog.block(hot).dfg.num_operations(), cis.size());
  const int emit = std::min<std::size_t>(3, cis.size());
  for (int i = 0; i < emit; ++i) {
    const auto text = rtl::emit_verilog(prog.block(hot).dfg, cis[static_cast<std::size_t>(i)],
                                        bench + "_" + std::to_string(i));
    std::fputs(text.c_str(), stdout);
    std::fputs("\n", stdout);
  }
  return 0;
}
