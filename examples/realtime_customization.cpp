// Chapter 3 end-to-end scenario: make an unschedulable real-time task set
// schedulable by customizing the processor, under both EDF and RMS, and show
// the energy head-room the freed utilization buys through voltage scaling.
//
//   $ ./example_realtime_customization
#include <cstdio>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/energy/dvfs.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/workloads/tasks.hpp"

using namespace isex;

int main() {
  // Four MiBench-style kernels at software utilization 1.08: unschedulable.
  auto ts = workloads::make_taskset({"crc32", "sha", "djpeg", "blowfish"},
                                    1.08);
  ts.sort_by_period();
  std::printf("task set (U_sw = %.3f):\n", ts.sw_utilization());
  for (const auto& t : ts.tasks)
    std::printf("  %-10s C=%12.0f  P=%14.0f  configs=%zu  max area=%.1f\n",
                t.name.c_str(), t.sw_cycles(), t.period, t.configs.size(),
                t.max_area());

  const double budget = 0.5 * ts.max_area();
  std::printf("\narea budget: %.1f adder-equivalents (50%% of MaxArea)\n\n",
              budget);

  const auto edf = customize::select_edf(ts, budget);
  std::printf("EDF: U = %.4f (%s), area used %.1f\n", edf.utilization,
              edf.schedulable ? "schedulable" : "NOT schedulable",
              edf.area_used);

  const auto rms = customize::select_rms(ts, budget);
  std::printf("RMS: U = %.4f (%s), area used %.1f, %ld B&B nodes\n",
              rms.utilization,
              rms.schedulable ? "schedulable" : "NOT schedulable",
              rms.area_used, rms.nodes_visited);

  // Validate the EDF selection by simulating one (capped) hyperperiod.
  std::vector<rt::SimTask> sim_tasks;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& cfg =
        ts.tasks[i].configs[static_cast<std::size_t>(edf.assignment[i])];
    sim_tasks.push_back(
        {static_cast<std::int64_t>(cfg.cycles),
         static_cast<std::int64_t>(ts.tasks[i].period)});
  }
  rt::SimOptions so;
  so.policy = rt::Policy::kEdf;
  so.horizon = 50'000'000;
  const auto sim = rt::simulate(sim_tasks, so);
  std::printf("simulation over %lld cycles: %s (%zu misses)\n\n",
              static_cast<long long>(sim.horizon),
              sim.all_met ? "all deadlines met" : "deadline misses",
              sim.misses.size());

  // Energy: lowest TM5400 operating point before vs after customization.
  const std::vector<int> sw_assign(ts.size(), 0);
  const auto before = energy::static_voltage_scaling(ts, sw_assign, true);
  const auto after = energy::static_voltage_scaling(ts, edf.assignment, true);
  const double h = 1e9;  // fixed comparison window
  const double e0 = energy::hyperperiod_energy(ts, sw_assign, before.point, h);
  const double e1 = energy::hyperperiod_energy(ts, edf.assignment, after.point, h);
  std::printf("energy (EDF, TM5400 static voltage scaling):\n");
  std::printf("  before: %3.0f MHz @ %.3f V\n", before.point.freq_mhz,
              before.point.volt);
  std::printf("  after : %3.0f MHz @ %.3f V  ->  %.1f%% energy saved\n",
              after.point.freq_mhz, after.point.volt, 100 * (1 - e1 / e0));
  return 0;
}
